package model

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/imu"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestCNNBiGRUForwardAndShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, err := New(KindCNNBiGRU, Config{WindowSamples: 20}, rng)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Score(tensor.New(20, imu.NumChannels))
	if math.IsNaN(p) || p < 0 || p > 1 {
		t.Fatalf("score %g", p)
	}
	if m.Name() != "CNN-BiGRU" {
		t.Fatalf("name %q", m.Name())
	}
}

func TestDistilledStudentSmallerThanTeacher(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	teacher, _ := New(KindCNN, Config{WindowSamples: 40}, rng)
	student, _ := New(KindDistilled, Config{WindowSamples: 40}, rng)
	if student.Net.ParamCount()*2 > teacher.Net.ParamCount() {
		t.Fatalf("student %d params not ≪ teacher %d",
			student.Net.ParamCount(), teacher.Net.ParamCount())
	}
}

// mkKDSet builds a separable toy set over [T × 9] windows.
func mkKDSet(n, T int, rng *rand.Rand) []nn.Example {
	out := make([]nn.Example, n)
	for i := range out {
		y := i % 2
		x := tensor.New(T, imu.NumChannels)
		for j := range x.Data() {
			v := rng.NormFloat64() * 0.3
			if y == 1 {
				v += 0.8
			}
			x.Data()[j] = v
		}
		out[i] = nn.Example{X: x, Y: y}
	}
	return out
}

func TestDistillStudentLearnsFromTeacher(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	train := mkKDSet(80, 10, rng)
	val := mkKDSet(20, 10, rng)

	teacher, _ := New(KindCNN, Config{WindowSamples: 10}, rng)
	if err := teacher.Fit(train, val, nn.TrainConfig{Epochs: 6, Patience: 6, BatchSize: 16}, rng); err != nil {
		t.Fatal(err)
	}
	tConf := nn.Confusion{}
	for _, e := range val {
		tConf.Add(teacher.Score(e.X), e.Y)
	}
	if tConf.Accuracy() < 0.9 {
		t.Skipf("teacher failed to learn the toy task (%.2f); nothing to distill", tConf.Accuracy())
	}

	student, _ := New(KindDistilled, Config{WindowSamples: 10}, rng)
	err := Distill(teacher, student, train, val, DistillConfig{
		Alpha: 0.5, Temperature: 2,
		Train: nn.TrainConfig{Epochs: 8, Patience: 8, BatchSize: 16},
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	sConf := nn.Confusion{}
	for _, e := range val {
		sConf.Add(student.Score(e.X), e.Y)
	}
	if sConf.Accuracy() < 0.85 {
		t.Fatalf("distilled student accuracy %.2f (teacher %.2f)",
			sConf.Accuracy(), tConf.Accuracy())
	}
}

func TestDistillEmptyTrainSet(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	teacher, _ := New(KindCNN, Config{WindowSamples: 10}, rng)
	student, _ := New(KindDistilled, Config{WindowSamples: 10}, rng)
	if err := Distill(teacher, student, nil, nil, DistillConfig{}, rng); err == nil {
		t.Fatal("empty distillation accepted")
	}
}

func TestDistillConfigDefaults(t *testing.T) {
	c := DistillConfig{}.withDefaults()
	if c.Alpha != 0.5 || c.Temperature != 2 {
		t.Fatalf("defaults %+v", c)
	}
}
