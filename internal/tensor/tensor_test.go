package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	a := New(3, 4)
	if a.Dims() != 2 || a.Dim(0) != 3 || a.Dim(1) != 4 {
		t.Fatalf("shape = %v, want [3 4]", a.Shape())
	}
	if a.Len() != 12 {
		t.Fatalf("Len = %d, want 12", a.Len())
	}
	for _, v := range a.Data() {
		if v != 0 {
			t.Fatal("New tensor not zeroed")
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive dim")
		}
	}()
	New(3, 0)
}

func TestFromSlice(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	a := FromSlice(d, 2, 3)
	if a.At(0, 0) != 1 || a.At(0, 2) != 3 || a.At(1, 0) != 4 || a.At(1, 2) != 6 {
		t.Fatalf("row-major layout broken: %v", a)
	}
	// FromSlice must alias, not copy.
	d[0] = 42
	if a.At(0, 0) != 42 {
		t.Fatal("FromSlice copied instead of aliasing")
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for size mismatch")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	a := New(2, 3, 4)
	a.Set(7.5, 1, 2, 3)
	if got := a.At(1, 2, 3); got != 7.5 {
		t.Fatalf("At = %g, want 7.5", got)
	}
	// Flat offset for (1,2,3) in shape (2,3,4) is 1*12+2*4+3 = 23.
	if a.Data()[23] != 7.5 {
		t.Fatal("multi-index offset wrong")
	}
}

func TestIndexOutOfRangePanics(t *testing.T) {
	a := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	a.At(0, 2)
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := a.Clone()
	b.Set(9, 0)
	if a.At(0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := a.Reshape(4)
	b.Set(99, 3)
	if a.At(1, 1) != 99 {
		t.Fatal("Reshape should be a view")
	}
}

func TestReshapePanicsOnCountChange(t *testing.T) {
	a := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Reshape(5)
}

func TestFillApplyScale(t *testing.T) {
	a := New(4)
	a.Fill(2)
	a.Apply(func(x float64) float64 { return x * x })
	a.Scale(0.5)
	for _, v := range a.Data() {
		if v != 2 {
			t.Fatalf("got %v, want all 2", a.Data())
		}
	}
}

func TestAddScaled(t *testing.T) {
	a := FromSlice([]float64{1, 1}, 2)
	b := FromSlice([]float64{2, 4}, 2)
	a.AddScaled(0.5, b)
	if a.At(0) != 2 || a.At(1) != 3 {
		t.Fatalf("AddScaled = %v, want [2 3]", a.Data())
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float64{-3, 1, 2}, 3)
	if a.Sum() != 0 {
		t.Fatalf("Sum = %g", a.Sum())
	}
	if a.Max() != 2 || a.Min() != -3 || a.AbsMax() != 3 {
		t.Fatalf("Max/Min/AbsMax = %g/%g/%g", a.Max(), a.Min(), a.AbsMax())
	}
	if a.Mean() != 0 {
		t.Fatalf("Mean = %g", a.Mean())
	}
	want := math.Sqrt((9.0 + 1 + 4) / 3)
	if math.Abs(a.Std()-want) > 1e-12 {
		t.Fatalf("Std = %g, want %g", a.Std(), want)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := FromSlice([]float64{58, 64, 139, 154}, 2, 2)
	if !c.Equal(want, 1e-12) {
		t.Fatalf("MatMul = %v, want %v", c, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 4)
	for i := range a.Data() {
		a.Data()[i] = rng.NormFloat64()
	}
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(1, i, i)
	}
	if !MatMul(a, id).Equal(a, 1e-12) || !MatMul(id, a).Equal(a, 1e-12) {
		t.Fatal("identity law violated")
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	x := FromSlice([]float64{5, 6}, 2)
	y := MatVec(a, x)
	if y.At(0) != 17 || y.At(1) != 39 {
		t.Fatalf("MatVec = %v", y.Data())
	}
}

func TestDotTransposeConcat(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3}, 3)
	b := FromSlice([]float64{4, 5, 6}, 3)
	if Dot(a, b) != 32 {
		t.Fatalf("Dot = %g", Dot(a, b))
	}
	m := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	mt := Transpose(m)
	if mt.Dim(0) != 3 || mt.Dim(1) != 2 || mt.At(2, 1) != 6 || mt.At(0, 1) != 4 {
		t.Fatalf("Transpose = %v", mt)
	}
	c := Concat1D(a, b)
	if c.Len() != 6 || c.At(3) != 4 {
		t.Fatalf("Concat1D = %v", c.Data())
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ for random matrices.
func TestMatMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a, b := New(m, k), New(k, n)
		for i := range a.Data() {
			a.Data()[i] = rng.NormFloat64()
		}
		for i := range b.Data() {
			b.Data()[i] = rng.NormFloat64()
		}
		lhs := Transpose(MatMul(a, b))
		rhs := MatMul(Transpose(b), Transpose(a))
		return lhs.Equal(rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: MatVec agrees with MatMul on a column vector.
func TestMatVecConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(8), 1+rng.Intn(8)
		a, x := New(m, n), New(n)
		for i := range a.Data() {
			a.Data()[i] = rng.NormFloat64()
		}
		for i := range x.Data() {
			x.Data()[i] = rng.NormFloat64()
		}
		y1 := MatVec(a, x)
		y2 := MatMul(a, x.Reshape(n, 1)).Reshape(m)
		return y1.Equal(y2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: Dot is symmetric and linear in its first argument.
func TestDotBilinearProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		a, b, c := New(n), New(n), New(n)
		for i := 0; i < n; i++ {
			a.Data()[i] = rng.NormFloat64()
			b.Data()[i] = rng.NormFloat64()
			c.Data()[i] = rng.NormFloat64()
		}
		alpha := rng.NormFloat64()
		// symmetry
		if math.Abs(Dot(a, b)-Dot(b, a)) > 1e-9 {
			return false
		}
		// linearity: (a + alpha*c)·b == a·b + alpha*(c·b)
		ac := a.Clone()
		ac.AddScaled(alpha, c)
		return math.Abs(Dot(ac, b)-(Dot(a, b)+alpha*Dot(c, b))) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualShapeMismatch(t *testing.T) {
	if New(2, 3).Equal(New(3, 2), 1e-9) {
		t.Fatal("Equal must compare shapes")
	}
	if New(2).Equal(New(2, 1), 1e-9) {
		t.Fatal("Equal must compare ndim")
	}
}

func TestStringSmallAndLarge(t *testing.T) {
	if s := FromSlice([]float64{1, 2}, 2).String(); s == "" {
		t.Fatal("empty String for small tensor")
	}
	if s := New(100).String(); s == "" {
		t.Fatal("empty String for large tensor")
	}
}
