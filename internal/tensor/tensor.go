// Package tensor provides small dense numeric tensors used by the
// neural-network and signal-processing substrates.
//
// Tensors are row-major scalar buffers with an explicit shape. The
// scalar is a type parameter — Of[float64] carries training and the
// reference inference path, Of[float32] carries the lowered edge
// inference path — and Tensor is an alias for the float64
// instantiation, so all pre-generic call sites compile unchanged and
// the float64 arithmetic is bit-identical to the concrete
// implementation it replaced. The package favours clarity and
// predictable allocation over raw speed: the models in this repository
// are deliberately tiny (the paper's whole point is fitting in 256 KiB
// of flash), so a straightforward implementation is fast enough while
// remaining auditable.
package tensor

import (
	"fmt"
	"math"
	"strings"
	"unsafe"
)

// Scalar is the numeric element type a tensor (and every kernel built
// on one) can be instantiated at. float64 is the training and
// reference width; float32 is the lowered inference width matching the
// paper's single-precision-FPU deployment target.
type Scalar interface {
	float32 | float64
}

// Of is a dense row-major tensor over scalar type S.
type Of[S Scalar] struct {
	shape []int
	data  []S
}

// Tensor is the float64 instantiation — the training and reference
// width. The alias keeps every pre-generic call site source- and
// bit-compatible.
type Tensor = Of[float64]

// New returns a zero float64 tensor with the given shape.
// New() with no arguments returns a scalar-shaped tensor of one element.
func New(shape ...int) *Tensor { return NewOf[float64](shape...) }

// NewOf returns a zero tensor of scalar type S with the given shape.
func NewOf[S Scalar](shape ...int) *Of[S] {
	// Copy before validating so the variadic slice never escapes — the
	// panic message referencing `shape` directly would force every
	// caller (including the scratch-reusing hot paths) to heap-allocate
	// the argument slice.
	s := make([]int, len(shape))
	copy(s, shape)
	n := 1
	for _, d := range s {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, s))
		}
		n *= d
	}
	return &Of[S]{shape: s, data: make([]S, n)}
}

// FromSlice wraps float64 data in a tensor of the given shape. The
// slice is used directly (not copied); len(data) must equal the shape
// product.
func FromSlice(data []float64, shape ...int) *Tensor {
	return FromSliceOf(data, shape...)
}

// FromSliceOf wraps data in a tensor of the given shape. The slice is
// used directly (not copied); len(data) must equal the shape product.
func FromSliceOf[S Scalar](data []S, shape ...int) *Of[S] {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v wants %d elements, got %d", shape, n, len(data)))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Of[S]{shape: s, data: data}
}

// Shape returns the tensor's dimensions. The returned slice must not
// be modified.
func (t *Of[S]) Shape() []int { return t.shape }

// Dims returns the number of dimensions.
func (t *Of[S]) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Of[S]) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Of[S]) Len() int { return len(t.data) }

// Data returns the underlying buffer. Mutations are visible to the
// tensor; this is the intended way for hot loops to access storage.
func (t *Of[S]) Data() []S { return t.data }

// Clone returns a deep copy.
func (t *Of[S]) Clone() *Of[S] {
	d := make([]S, len(t.data))
	copy(d, t.data)
	s := make([]int, len(t.shape))
	copy(s, t.shape)
	return &Of[S]{shape: s, data: d}
}

// Reshape returns a view of the same data with a new shape. The total
// element count must be unchanged.
func (t *Of[S]) Reshape(shape ...int) *Of[S] {
	// Copy first so the variadic slice never escapes (see New).
	s := make([]int, len(shape))
	copy(s, shape)
	n := 1
	for _, d := range s {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)",
			t.shape, len(t.data), s, n))
	}
	return &Of[S]{shape: s, data: t.data}
}

// index computes the flat offset for the given multi-index.
func (t *Of[S]) index(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for %d-d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for k, i := range idx {
		if i < 0 || i >= t.shape[k] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) in dim %d", i, t.shape[k], k))
		}
		off = off*t.shape[k] + i
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Of[S]) At(idx ...int) S { return t.data[t.index(idx...)] }

// Set stores v at the given multi-index.
func (t *Of[S]) Set(v S, idx ...int) { t.data[t.index(idx...)] = v }

// Fill sets every element to v.
func (t *Of[S]) Fill(v S) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Of[S]) Zero() { t.Fill(0) }

// Apply replaces each element x with f(x).
func (t *Of[S]) Apply(f func(S) S) {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
}

// AddScaled adds alpha*o element-wise into t. Shapes must match in
// element count.
func (t *Of[S]) AddScaled(alpha S, o *Of[S]) {
	if len(t.data) != len(o.data) {
		panic("tensor: AddScaled size mismatch")
	}
	for i, v := range o.data {
		t.data[i] += alpha * v
	}
}

// Scale multiplies every element by alpha.
func (t *Of[S]) Scale(alpha S) {
	for i := range t.data {
		t.data[i] *= alpha
	}
}

// Sum returns the sum of all elements, accumulated at the tensor's own
// width.
func (t *Of[S]) Sum() S {
	var s S
	for _, v := range t.data {
		s += v
	}
	return s
}

// Max returns the maximum element. It panics on an empty tensor.
func (t *Of[S]) Max() S {
	m := S(math.Inf(-1))
	for _, v := range t.data {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element.
func (t *Of[S]) Min() S {
	m := S(math.Inf(1))
	for _, v := range t.data {
		if v < m {
			m = v
		}
	}
	return m
}

// AbsMax returns max(|x|) over all elements (0 for empty data).
func (t *Of[S]) AbsMax() S {
	var m S
	for _, v := range t.data {
		a := v
		if a < 0 {
			a = -a
		}
		if a > m {
			m = a
		}
	}
	return m
}

// Mean returns the arithmetic mean of all elements.
func (t *Of[S]) Mean() S {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / S(len(t.data))
}

// Std returns the population standard deviation.
func (t *Of[S]) Std() S {
	if len(t.data) == 0 {
		return 0
	}
	mu := t.Mean()
	var s S
	for _, v := range t.data {
		d := v - mu
		s += d * d
	}
	return S(math.Sqrt(float64(s) / float64(len(t.data))))
}

// Equal reports whether t and o have identical shapes and all elements
// within eps of each other.
func (t *Of[S]) Equal(o *Of[S], eps float64) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	for i := range t.data {
		if math.Abs(float64(t.data[i]-o.data[i])) > eps {
			return false
		}
	}
	return true
}

// String renders small tensors for debugging.
func (t *Of[S]) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.data) <= 16 {
		fmt.Fprintf(&b, "%v", t.data)
	} else {
		fmt.Fprintf(&b, "[%g %g ... %g]", t.data[0], t.data[1], t.data[len(t.data)-1])
	}
	return b.String()
}

// MatMul computes C = A·B for 2-D tensors A[m×k], B[k×n] into a new
// tensor C[m×n].
func MatMul[S Scalar](a, b *Of[S]) *Of[S] {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMul needs 2-D operands")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d != %d", k, k2))
	}
	c := NewOf[S](m, n)
	ad, bd, cd := a.data, b.data, c.data
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		crow := cd[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := bd[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// MatVec computes y = A·x for A[m×n], x[n] into a new length-m tensor.
func MatVec[S Scalar](a, x *Of[S]) *Of[S] {
	if a.Dims() != 2 || x.Dims() != 1 {
		panic("tensor: MatVec needs 2-D matrix and 1-D vector")
	}
	m, n := a.shape[0], a.shape[1]
	if n != x.shape[0] {
		panic(fmt.Sprintf("tensor: MatVec dims %d != %d", n, x.shape[0]))
	}
	y := NewOf[S](m)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		var s S
		for j, v := range row {
			s += v * x.data[j]
		}
		y.data[i] = s
	}
	return y
}

// Dot returns the inner product of two 1-D tensors.
func Dot[S Scalar](a, b *Of[S]) S {
	if len(a.data) != len(b.data) {
		panic("tensor: Dot size mismatch")
	}
	var s S
	for i, v := range a.data {
		s += v * b.data[i]
	}
	return s
}

// Transpose returns a new 2-D tensor that is the transpose of a.
func Transpose[S Scalar](a *Of[S]) *Of[S] {
	if a.Dims() != 2 {
		panic("tensor: Transpose needs a 2-D tensor")
	}
	m, n := a.shape[0], a.shape[1]
	t := NewOf[S](n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			t.data[j*m+i] = a.data[i*n+j]
		}
	}
	return t
}

// Reuse returns t when its buffer already holds exactly the product of
// shape elements and its rank matches (rewriting the dims in place), and
// a freshly allocated tensor otherwise. It is the scratch-buffer
// primitive behind the allocation-free layer kernels: a layer keeps the
// returned tensor and passes it back on the next call, so steady-state
// hot paths stop allocating once shapes stabilise.
//
// Reuse never zeroes the buffer — callers that accumulate into it must
// call Zero themselves. Because the dims are rewritten in place, the
// tensor must be owned by the caller (never a view of someone else's
// buffer).
//
//fallvet:hotpath
func Reuse[S Scalar](t *Of[S], shape ...int) *Of[S] {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if t == nil || len(t.data) != n || len(t.shape) != len(shape) {
		//fallvet:ignore hottrans cold branch: taken only until the caller's shapes stabilise; the AllocsPerRun gates prove steady-state reuse
		return NewOf[S](shape...)
	}
	copy(t.shape, shape)
	return t
}

// ViewInto returns a view of src's buffer with the given shape, reusing
// *cache when it already aliases that exact buffer (avoiding the header
// allocation Reshape pays in hot loops). The element count must match
// src's. On a cache miss the fresh view is stored back into *cache.
//
//fallvet:hotpath
func ViewInto[S Scalar](cache **Of[S], src *Of[S], shape ...int) *Of[S] {
	c := *cache
	if c != nil && len(c.data) == len(src.data) && len(src.data) > 0 &&
		&c.data[0] == &src.data[0] && len(c.shape) == len(shape) {
		copy(c.shape, shape)
		return c
	}
	//fallvet:ignore hottrans cache miss: the fresh view header is built once, then every later call hits the cache (alloc gates)
	v := src.Reshape(shape...)
	*cache = v
	return v
}

// Concat1D concatenates 1-D tensors into a single 1-D tensor.
func Concat1D[S Scalar](parts ...*Of[S]) *Of[S] {
	n := 0
	for _, p := range parts {
		n += len(p.data)
	}
	out := NewOf[S](n)
	off := 0
	for _, p := range parts {
		copy(out.data[off:], p.data)
		off += len(p.data)
	}
	return out
}

// Is64 reports whether S is float64. The width test is a size compare
// the compiler folds to a per-instantiation constant — no boxing, no
// allocation — so it is safe on push and score paths (the incremental
// scorer's widen fallback branches on it every stride).
func Is64[S Scalar]() bool {
	var z S
	return unsafe.Sizeof(z) == 8
}

// Widen copies src (any scalar width) into a float64 tensor, reusing
// dst's buffer when its element count already matches. float32→float64
// conversion is exact, so Widen(Lower(t)) at float32 loses exactly the
// bits Lower dropped and nothing else.
func Widen[S Scalar](dst *Tensor, src *Of[S]) *Tensor {
	out := Reuse(dst, src.shape...)
	od := out.data
	for i, v := range src.data {
		od[i] = float64(v)
	}
	return out
}

// Lower copies a float64 tensor into a tensor of scalar type S,
// reusing dst's buffer when its element count already matches. At
// S=float64 it is a plain copy; at S=float32 each element is rounded
// to nearest-even single precision — the checkpoint-lowering primitive
// behind the float32 inference path.
func Lower[S Scalar](dst *Of[S], src *Tensor) *Of[S] {
	out := Reuse(dst, src.shape...)
	od := out.data
	for i, v := range src.data {
		od[i] = S(v)
	}
	return out
}
