// Package tensor provides small dense numeric tensors used by the
// neural-network and signal-processing substrates.
//
// Tensors are row-major float64 buffers with an explicit shape. The
// package favours clarity and predictable allocation over raw speed:
// the models in this repository are deliberately tiny (the paper's
// whole point is fitting in 256 KiB of flash), so a straightforward
// implementation is fast enough while remaining auditable.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major float64 tensor.
type Tensor struct {
	shape []int
	data  []float64
}

// New returns a zero tensor with the given shape.
// New() with no arguments returns a scalar-shaped tensor of one element.
func New(shape ...int) *Tensor {
	// Copy before validating so the variadic slice never escapes — the
	// panic message referencing `shape` directly would force every
	// caller (including the scratch-reusing hot paths) to heap-allocate
	// the argument slice.
	s := make([]int, len(shape))
	copy(s, shape)
	n := 1
	for _, d := range s {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, s))
		}
		n *= d
	}
	return &Tensor{shape: s, data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is
// used directly (not copied); len(data) must equal the shape product.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v wants %d elements, got %d", shape, n, len(data)))
	}
	s := make([]int, len(shape))
	copy(s, shape)
	return &Tensor{shape: s, data: data}
}

// Shape returns the tensor's dimensions. The returned slice must not
// be modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the underlying buffer. Mutations are visible to the
// tensor; this is the intended way for hot loops to access storage.
func (t *Tensor) Data() []float64 { return t.data }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	d := make([]float64, len(t.data))
	copy(d, t.data)
	s := make([]int, len(t.shape))
	copy(s, t.shape)
	return &Tensor{shape: s, data: d}
}

// Reshape returns a view of the same data with a new shape. The total
// element count must be unchanged.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	// Copy first so the variadic slice never escapes (see New).
	s := make([]int, len(shape))
	copy(s, shape)
	n := 1
	for _, d := range s {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)",
			t.shape, len(t.data), s, n))
	}
	return &Tensor{shape: s, data: t.data}
}

// index computes the flat offset for the given multi-index.
func (t *Tensor) index(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for %d-d tensor", len(idx), len(t.shape)))
	}
	off := 0
	for k, i := range idx {
		if i < 0 || i >= t.shape[k] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) in dim %d", i, t.shape[k], k))
		}
		off = off*t.shape[k] + i
	}
	return off
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.data[t.index(idx...)] }

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.data[t.index(idx...)] = v }

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// Apply replaces each element x with f(x).
func (t *Tensor) Apply(f func(float64) float64) {
	for i, v := range t.data {
		t.data[i] = f(v)
	}
}

// AddScaled adds alpha*o element-wise into t. Shapes must match in
// element count.
func (t *Tensor) AddScaled(alpha float64, o *Tensor) {
	if len(t.data) != len(o.data) {
		panic("tensor: AddScaled size mismatch")
	}
	for i, v := range o.data {
		t.data[i] += alpha * v
	}
}

// Scale multiplies every element by alpha.
func (t *Tensor) Scale(alpha float64) {
	for i := range t.data {
		t.data[i] *= alpha
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += v
	}
	return s
}

// Max returns the maximum element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	m := math.Inf(-1)
	for _, v := range t.data {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element.
func (t *Tensor) Min() float64 {
	m := math.Inf(1)
	for _, v := range t.data {
		if v < m {
			m = v
		}
	}
	return m
}

// AbsMax returns max(|x|) over all elements (0 for empty data).
func (t *Tensor) AbsMax() float64 {
	m := 0.0
	for _, v := range t.data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Std returns the population standard deviation.
func (t *Tensor) Std() float64 {
	if len(t.data) == 0 {
		return 0
	}
	mu := t.Mean()
	s := 0.0
	for _, v := range t.data {
		d := v - mu
		s += d * d
	}
	return math.Sqrt(s / float64(len(t.data)))
}

// Equal reports whether t and o have identical shapes and all elements
// within eps of each other.
func (t *Tensor) Equal(o *Tensor, eps float64) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	for i := range t.data {
		if math.Abs(t.data[i]-o.data[i]) > eps {
			return false
		}
	}
	return true
}

// String renders small tensors for debugging.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.data) <= 16 {
		fmt.Fprintf(&b, "%v", t.data)
	} else {
		fmt.Fprintf(&b, "[%g %g ... %g]", t.data[0], t.data[1], t.data[len(t.data)-1])
	}
	return b.String()
}

// MatMul computes C = A·B for 2-D tensors A[m×k], B[k×n] into a new
// tensor C[m×n].
func MatMul(a, b *Tensor) *Tensor {
	if a.Dims() != 2 || b.Dims() != 2 {
		panic("tensor: MatMul needs 2-D operands")
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d != %d", k, k2))
	}
	c := New(m, n)
	ad, bd, cd := a.data, b.data, c.data
	for i := 0; i < m; i++ {
		arow := ad[i*k : (i+1)*k]
		crow := cd[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 {
				continue
			}
			brow := bd[p*n : (p+1)*n]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// MatVec computes y = A·x for A[m×n], x[n] into a new length-m tensor.
func MatVec(a, x *Tensor) *Tensor {
	if a.Dims() != 2 || x.Dims() != 1 {
		panic("tensor: MatVec needs 2-D matrix and 1-D vector")
	}
	m, n := a.shape[0], a.shape[1]
	if n != x.shape[0] {
		panic(fmt.Sprintf("tensor: MatVec dims %d != %d", n, x.shape[0]))
	}
	y := New(m)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		s := 0.0
		for j, v := range row {
			s += v * x.data[j]
		}
		y.data[i] = s
	}
	return y
}

// Dot returns the inner product of two 1-D tensors.
func Dot(a, b *Tensor) float64 {
	if len(a.data) != len(b.data) {
		panic("tensor: Dot size mismatch")
	}
	s := 0.0
	for i, v := range a.data {
		s += v * b.data[i]
	}
	return s
}

// Transpose returns a new 2-D tensor that is the transpose of a.
func Transpose(a *Tensor) *Tensor {
	if a.Dims() != 2 {
		panic("tensor: Transpose needs a 2-D tensor")
	}
	m, n := a.shape[0], a.shape[1]
	t := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			t.data[j*m+i] = a.data[i*n+j]
		}
	}
	return t
}

// Reuse returns t when its buffer already holds exactly the product of
// shape elements and its rank matches (rewriting the dims in place), and
// a freshly allocated tensor otherwise. It is the scratch-buffer
// primitive behind the allocation-free layer kernels: a layer keeps the
// returned tensor and passes it back on the next call, so steady-state
// hot paths stop allocating once shapes stabilise.
//
// Reuse never zeroes the buffer — callers that accumulate into it must
// call Zero themselves. Because the dims are rewritten in place, the
// tensor must be owned by the caller (never a view of someone else's
// buffer).
//
//fallvet:hotpath
func Reuse(t *Tensor, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if t == nil || len(t.data) != n || len(t.shape) != len(shape) {
		//fallvet:ignore hottrans cold branch: taken only until the caller's shapes stabilise; the AllocsPerRun gates prove steady-state reuse
		return New(shape...)
	}
	copy(t.shape, shape)
	return t
}

// ViewInto returns a view of src's buffer with the given shape, reusing
// *cache when it already aliases that exact buffer (avoiding the header
// allocation Reshape pays in hot loops). The element count must match
// src's. On a cache miss the fresh view is stored back into *cache.
//
//fallvet:hotpath
func ViewInto(cache **Tensor, src *Tensor, shape ...int) *Tensor {
	c := *cache
	if c != nil && len(c.data) == len(src.data) && len(src.data) > 0 &&
		&c.data[0] == &src.data[0] && len(c.shape) == len(shape) {
		copy(c.shape, shape)
		return c
	}
	//fallvet:ignore hottrans cache miss: the fresh view header is built once, then every later call hits the cache (alloc gates)
	v := src.Reshape(shape...)
	*cache = v
	return v
}

// Concat1D concatenates 1-D tensors into a single 1-D tensor.
func Concat1D(parts ...*Tensor) *Tensor {
	n := 0
	for _, p := range parts {
		n += len(p.data)
	}
	out := New(n)
	off := 0
	for _, p := range parts {
		copy(out.data[off:], p.data)
		off += len(p.data)
	}
	return out
}
