package tensor

import "testing"

// expectPanic runs f and fails the test when it does not panic.
func expectPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestPanicPaths(t *testing.T) {
	a := New(2, 3)
	b := New(3, 3)
	v := New(4)

	expectPanic(t, "AddScaled mismatch", func() { a.AddScaled(1, v) })
	expectPanic(t, "Dot mismatch", func() { Dot(v, New(5)) })
	expectPanic(t, "MatMul non-2d", func() { MatMul(v, a) })
	expectPanic(t, "MatMul inner dims", func() { MatMul(a, New(2, 2)) })
	expectPanic(t, "MatVec non-matching", func() { MatVec(a, v) })
	expectPanic(t, "MatVec wrong ranks", func() { MatVec(v, v) })
	expectPanic(t, "Transpose 1d", func() { Transpose(v) })
	expectPanic(t, "wrong index count", func() { a.At(1) })
	expectPanic(t, "negative index", func() { a.At(-1, 0) })
	_ = b
}

func TestEmptyishReductions(t *testing.T) {
	// Single-element tensors exercise the degenerate reduction paths.
	s := FromSlice([]float64{-2}, 1)
	if s.Max() != -2 || s.Min() != -2 || s.AbsMax() != 2 {
		t.Fatal("single-element reductions")
	}
	if s.Mean() != -2 || s.Std() != 0 {
		t.Fatal("single-element stats")
	}
}

func TestScalarShapedTensor(t *testing.T) {
	s := New() // no dims: one element
	if s.Len() != 1 || s.Dims() != 0 {
		t.Fatalf("scalar tensor: len %d dims %d", s.Len(), s.Dims())
	}
}
