package synth

import (
	"math/rand"

	"repro/internal/imu"
)

// Subject is one synthetic participant. The anthropometric fields
// mirror the paper's cohort statistics (§II-B: age 23.5 ± 6.3 y,
// 71.5 ± 13.2 kg, 178 ± 8 cm) and feed the motion model: heavier or
// taller subjects move with larger accelerations and slower cadence,
// and every subject carries individual vigor and sensor-noise traits
// so that subject-independent evaluation is meaningfully harder than
// a random split.
type Subject struct {
	ID       int
	HeightCM float64
	MassKG   float64

	// Speed scales cadence and transition durations (≈1).
	Speed float64
	// Vigor scales motion amplitudes (≈1).
	Vigor float64
	// NoiseAccG and NoiseGyroDPS are the sensor noise σ for this
	// subject's device placement.
	NoiseAccG    float64
	NoiseGyroDPS float64

	// Mount is the subject's sensor-mounting misalignment: jackets sit
	// slightly differently on every torso (up to ~15°), so the body
	// frame each subject reports is individually rotated. This is what
	// makes subject-independent evaluation genuinely harder than a
	// random split — the model must generalise across placements.
	Mount imu.Mat3
}

// NewSubject draws a subject with the cohort's statistics using the
// provided source of randomness.
func NewSubject(id int, rng *rand.Rand) Subject {
	clamp := func(v, lo, hi float64) float64 {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	}
	axis := imu.Vec3{
		X: rng.NormFloat64(),
		Y: rng.NormFloat64(),
		Z: rng.NormFloat64(),
	}
	if axis.Norm() < 1e-9 {
		axis = imu.Vec3{X: 1}
	}
	angle := imu.DegToRad(clamp(6*rng.NormFloat64(), -15, 15))
	return Subject{
		ID:           id,
		HeightCM:     clamp(178+8*rng.NormFloat64(), 150, 205),
		MassKG:       clamp(71.5+13.2*rng.NormFloat64(), 45, 120),
		Speed:        clamp(1+0.12*rng.NormFloat64(), 0.7, 1.3),
		Vigor:        clamp(1+0.15*rng.NormFloat64(), 0.6, 1.5),
		NoiseAccG:    clamp(0.02+0.008*rng.NormFloat64(), 0.008, 0.05),
		NoiseGyroDPS: clamp(1.2+0.5*rng.NormFloat64(), 0.3, 3),
		Mount:        imu.Rodrigues(axis, angle),
	}
}

// Cohort draws n subjects with consecutive ids starting at firstID.
func Cohort(n, firstID int, rng *rand.Rand) []Subject {
	out := make([]Subject, n)
	for i := range out {
		out[i] = NewSubject(firstID+i, rng)
	}
	return out
}
