package synth

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/dsp"
	"repro/internal/imu"
)

func TestTaskRegistryStructure(t *testing.T) {
	all := AllTasks()
	if len(all) != NumTasks {
		t.Fatalf("registry has %d tasks, want %d", len(all), NumTasks)
	}
	for i, task := range all {
		if task.ID != i+1 {
			t.Fatalf("task %d has id %d", i, task.ID)
		}
		if task.Name == "" {
			t.Fatalf("task %d unnamed", task.ID)
		}
	}
}

func TestTaskCountsMatchPaper(t *testing.T) {
	// Paper: self-collected = 23 ADLs + 21 falls; KFall = 21 ADLs + 15 falls.
	var wsFalls, wsADLs, kfFalls, kfADLs int
	for _, task := range AllTasks() {
		if task.IsFall() {
			wsFalls++
			if task.InKFall {
				kfFalls++
			}
		} else {
			wsADLs++
			if task.InKFall {
				kfADLs++
			}
		}
	}
	if wsADLs != 23 || wsFalls != 21 {
		t.Errorf("worksite = %d ADLs / %d falls, want 23/21", wsADLs, wsFalls)
	}
	if kfADLs != 21 || kfFalls != 15 {
		t.Errorf("kfall = %d ADLs / %d falls, want 21/15", kfADLs, kfFalls)
	}
	if n := len(KFallTasks()); n != 36 {
		t.Errorf("KFallTasks = %d, want 36", n)
	}
	if n := len(WorksiteTasks()); n != NumTasks {
		t.Errorf("WorksiteTasks = %d, want %d", n, NumTasks)
	}
}

func TestTaskByIDBounds(t *testing.T) {
	if _, err := TaskByID(0); err == nil {
		t.Error("id 0 accepted")
	}
	if _, err := TaskByID(NumTasks + 1); err == nil {
		t.Error("id 45 accepted")
	}
	task, err := TaskByID(39)
	if err != nil || task.Category != FallFromHeight {
		t.Errorf("task 39 = %+v, %v", task, err)
	}
}

func TestRedGreenPartition(t *testing.T) {
	// Every red task must be an ADL (falls are not part of Table IVb).
	for _, task := range AllTasks() {
		if task.Red && task.IsFall() {
			t.Errorf("task %d is red but a fall", task.ID)
		}
	}
}

func TestSubjectCohortStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	subs := Cohort(200, 1, rng)
	var h, m float64
	for _, s := range subs {
		h += s.HeightCM
		m += s.MassKG
		if s.Speed < 0.7 || s.Speed > 1.3 {
			t.Fatalf("speed %g out of clamp", s.Speed)
		}
		if s.NoiseAccG <= 0 || s.NoiseGyroDPS <= 0 {
			t.Fatal("non-positive noise")
		}
	}
	h /= 200
	m /= 200
	if h < 172 || h > 184 {
		t.Errorf("mean height %g far from 178", h)
	}
	if m < 63 || m > 80 {
		t.Errorf("mean mass %g far from 71.5", m)
	}
	if subs[0].ID != 1 || subs[199].ID != 200 {
		t.Error("cohort ids not consecutive")
	}
}

func genTrial(t *testing.T, taskID int, seed int64) dataset.Trial {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	subj := NewSubject(1, rng)
	task, err := TaskByID(taskID)
	if err != nil {
		t.Fatal(err)
	}
	tr := GenerateTrial(subj, task, 0, 6, rng)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestEveryTaskGeneratesValidTrial(t *testing.T) {
	for id := 1; id <= NumTasks; id++ {
		tr := genTrial(t, id, int64(100+id))
		task, _ := TaskByID(id)
		if task.IsFall() != tr.IsFall() {
			t.Errorf("task %d: IsFall mismatch (trial %v)", id, tr.IsFall())
		}
		if len(tr.Samples) < 100 {
			t.Errorf("task %d: only %d samples", id, len(tr.Samples))
		}
		// Accelerations should be physically plausible: bounded by the
		// LIS3DH's ±16 g range.
		for i, s := range tr.Samples {
			if s.Acc.Norm() > 16 {
				t.Errorf("task %d sample %d: |acc| = %g g", id, i, s.Acc.Norm())
				break
			}
		}
	}
}

func TestFallTrialsHaveFreeFallSignature(t *testing.T) {
	// During [onset, impact) the minimum acceleration magnitude must
	// drop well below 1 g — the defining pre-impact signature.
	for _, id := range []int{30, 31, 34, 39, 40} {
		tr := genTrial(t, id, int64(7*id))
		if !tr.IsFall() {
			t.Fatalf("task %d: no fall annotation", id)
		}
		minMag := math.Inf(1)
		for _, s := range tr.Samples[tr.FallOnset:tr.Impact] {
			if m := s.Acc.Norm(); m < minMag {
				minMag = m
			}
		}
		if minMag > 0.7 {
			t.Errorf("task %d: min |acc| during fall = %g g, want < 0.7", id, minMag)
		}
	}
}

func TestHeightFallsLongerAndCleaner(t *testing.T) {
	// Falls from height: longer falling phase, deeper free fall, less
	// rotation than trip falls — the structure behind Table IVa.
	avg := func(id int, f func(tr dataset.Trial) float64) float64 {
		s := 0.0
		for seed := int64(0); seed < 8; seed++ {
			s += f(genTrial(t, id, seed*31+int64(id)))
		}
		return s / 8
	}
	dur := func(tr dataset.Trial) float64 { return float64(tr.Impact - tr.FallOnset) }
	minMag := func(tr dataset.Trial) float64 {
		m := math.Inf(1)
		for _, s := range tr.Samples[tr.FallOnset:tr.Impact] {
			if v := s.Acc.Norm(); v < m {
				m = v
			}
		}
		return m
	}
	maxRot := func(tr dataset.Trial) float64 {
		m := 0.0
		for _, s := range tr.Samples[tr.FallOnset:tr.Impact] {
			if v := s.Gyro.Norm(); v > m {
				m = v
			}
		}
		return m
	}
	if d39, d21 := avg(39, dur), avg(21, dur); d39 <= d21 {
		t.Errorf("height fall duration %g ≤ sitting fall %g", d39, d21)
	}
	if m39, m30 := avg(39, minMag), avg(30, minMag); m39 >= m30 {
		t.Errorf("height fall min|acc| %g ≥ trip fall %g (should be cleaner)", m39, m30)
	}
	if r39, r30 := avg(39, maxRot), avg(30, maxRot); r39 >= r30 {
		t.Errorf("height fall max rotation %g ≥ trip fall %g (should be lower)", r39, r30)
	}
}

func TestADLTrialsNeverDipLikeLongFalls(t *testing.T) {
	// Walking and standing must not produce sustained sub-0.5 g dips
	// longer than 150 ms (jumps may briefly).
	for _, id := range []int{1, 6, 8, 12, 35} {
		tr := genTrial(t, id, int64(3*id))
		run := 0
		for _, s := range tr.Samples {
			if s.Acc.Norm() < 0.5 {
				run++
				if run > 15 {
					t.Errorf("task %d: >150 ms below 0.5 g in an ADL", id)
					break
				}
			} else {
				run = 0
			}
		}
	}
}

func TestJumpHasFlightButNoAnnotation(t *testing.T) {
	tr := genTrial(t, 44, 5)
	if tr.IsFall() {
		t.Fatal("task 44 must not be annotated as a fall")
	}
	minMag := math.Inf(1)
	for _, s := range tr.Samples {
		if m := s.Acc.Norm(); m < minMag {
			minMag = m
		}
	}
	if minMag > 0.4 {
		t.Errorf("jump flight min |acc| = %g, want < 0.4 (near-fall signature)", minMag)
	}
}

func TestWalkingHasGaitFrequency(t *testing.T) {
	tr := genTrial(t, 6, 11)
	// The vertical (Z) channel should oscillate near the commanded
	// 1.8 Hz × subject speed: count mean crossings.
	z := tr.Channel(imu.AccZ)
	f := dsp.MustButterworth(4, 5, 100)
	z = f.FiltFilt(z)
	mid := z[100 : len(z)-100]
	mean := dsp.Mean(mid)
	crossings := 0
	for i := 1; i < len(mid); i++ {
		if (mid[i-1] < mean) != (mid[i] < mean) {
			crossings++
		}
	}
	hz := float64(crossings) / 2 / (float64(len(mid)) / 100)
	if hz < 1.0 || hz > 4.5 {
		t.Errorf("walking fundamental ≈ %g Hz, want 1–4.5", hz)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := GenerateWorksite(2, Options{Tasks: []int{6, 30}}, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateWorksite(2, Options{Tasks: []int{6, 30}}, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trials) != len(b.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(a.Trials), len(b.Trials))
	}
	for i := range a.Trials {
		ta, tb := a.Trials[i], b.Trials[i]
		if len(ta.Samples) != len(tb.Samples) || ta.FallOnset != tb.FallOnset {
			t.Fatalf("trial %d differs structurally", i)
		}
		for j := range ta.Samples {
			if ta.Samples[j] != tb.Samples[j] {
				t.Fatalf("trial %d sample %d differs", i, j)
			}
		}
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	a, _ := GenerateWorksite(1, Options{Tasks: []int{30}}, 1)
	b, _ := GenerateWorksite(1, Options{Tasks: []int{30}}, 2)
	same := len(a.Trials[0].Samples) == len(b.Trials[0].Samples)
	if same {
		for j := range a.Trials[0].Samples {
			if a.Trials[0].Samples[j] != b.Trials[0].Samples[j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical trials")
	}
}

func TestGenerateKFallFlavour(t *testing.T) {
	d, err := GenerateKFall(2, Options{Tasks: []int{1, 30}}, 5)
	if err != nil {
		t.Fatal(err)
	}
	// 2 subjects × 2 tasks.
	if len(d.Trials) != 4 {
		t.Fatalf("got %d trials", len(d.Trials))
	}
	for i := range d.Trials {
		tr := &d.Trials[i]
		if tr.Source != dataset.SourceKFall {
			t.Fatal("source not KFall")
		}
		if tr.Subject < 101 {
			t.Fatalf("kfall subject id %d overlaps worksite range", tr.Subject)
		}
	}
	// A standing trial's acceleration magnitude must be ≈ 9.81 m/s²
	// (units differ from the worksite flavour).
	var stand *dataset.Trial
	for i := range d.Trials {
		if d.Trials[i].Task == 1 {
			stand = &d.Trials[i]
			break
		}
	}
	m := 0.0
	for _, s := range stand.Samples {
		m += s.Acc.Norm()
	}
	m /= float64(len(stand.Samples))
	if math.Abs(m-imu.StandardGravity) > 0.7 {
		t.Errorf("kfall standing |acc| = %g, want ≈ 9.81 m/s²", m)
	}
}

func TestGenerateKFallExcludesWorksiteOnlyTasks(t *testing.T) {
	if _, err := GenerateKFall(1, Options{Tasks: []int{39}}, 1); err == nil {
		t.Fatal("task 39 (worksite-only) accepted for KFall generation")
	}
}

func TestGenerateRejectsBadArgs(t *testing.T) {
	if _, err := GenerateWorksite(0, Options{}, 1); err == nil {
		t.Fatal("0 subjects accepted")
	}
}

func TestTrialsPerTask(t *testing.T) {
	d, err := GenerateWorksite(1, Options{Tasks: []int{6}, TrialsPerTask: 3}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Trials) != 3 {
		t.Fatalf("got %d trials, want 3", len(d.Trials))
	}
	seen := map[int]bool{}
	for i := range d.Trials {
		seen[d.Trials[i].Index] = true
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Fatal("trial indices not 0,1,2")
	}
}

func TestFallAnnotationOrdering(t *testing.T) {
	for id := 20; id <= 42; id++ {
		task, _ := TaskByID(id)
		if !task.IsFall() {
			continue
		}
		tr := genTrial(t, id, int64(id))
		if !(0 < tr.FallOnset && tr.FallOnset < tr.Impact && tr.Impact < len(tr.Samples)) {
			t.Errorf("task %d: bad annotation onset=%d impact=%d len=%d",
				id, tr.FallOnset, tr.Impact, len(tr.Samples))
		}
		durMS := float64(tr.Impact-tr.FallOnset) * 10
		if durMS < 150 || durMS > 1100 {
			t.Errorf("task %d: falling phase %g ms outside the paper's 150–1100 ms", id, durMS)
		}
		// Post-fall stillness must exist (lying on the ground).
		if len(tr.Samples)-tr.Impact < 50 {
			t.Errorf("task %d: missing post-fall phase", id)
		}
	}
}

func TestGaitCadenceScalesWithSubjectSpeed(t *testing.T) {
	// Spectral check: the dominant vertical frequency of walking must
	// increase with the subject's speed multiplier.
	cadence := func(speed float64) float64 {
		rng := rand.New(rand.NewSource(77))
		subj := NewSubject(1, rng)
		subj.Speed = speed
		task, _ := TaskByID(6)
		tr := GenerateTrial(subj, task, 0, 8, rng)
		hz, err := dsp.DominantFrequency(tr.Channel(imu.AccZ), 100, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return hz
	}
	slow, fast := cadence(0.8), cadence(1.25)
	if fast <= slow {
		t.Fatalf("cadence did not scale with speed: %.2f Hz at 0.8× vs %.2f Hz at 1.25×", slow, fast)
	}
}

func TestNoiseLevelScalesWithSubjectTrait(t *testing.T) {
	// A noisier subject's standing trial must have a larger residual
	// after removing the mean.
	residual := func(noise float64) float64 {
		rng := rand.New(rand.NewSource(88))
		subj := NewSubject(1, rng)
		subj.NoiseAccG = noise
		task, _ := TaskByID(1)
		tr := GenerateTrial(subj, task, 0, 5, rng)
		return dsp.Std(tr.Channel(imu.AccX))
	}
	if quiet, loud := residual(0.01), residual(0.05); loud <= quiet {
		t.Fatalf("noise trait ignored: σ %.4f at 0.01 vs %.4f at 0.05", quiet, loud)
	}
}
