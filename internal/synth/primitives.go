package synth

import (
	"math"

	"repro/internal/imu"
)

// bump emits a brief seat/floor contact transient (≈60 ms), much
// smaller and shorter than a fall impact: sitting down on a chair,
// lying down onto the floor.
func (b *builder) bump(peakG float64) {
	n := b.steps(0.06)
	dir := b.g
	for i := 0; i < n; i++ {
		t := float64(i) * b.dt()
		env := math.Exp(-t / 0.02)
		acc := dir.Scale(1 + (peakG-1)*env)
		gyro := imu.Vec3{
			X: 40 * env * b.rng.NormFloat64(),
			Y: 40 * env * b.rng.NormFloat64(),
		}
		b.emit(acc, gyro)
	}
}

// stumble emits a short chaotic burst — a caught trip that does not
// end in a fall: large erratic accelerations and rotation rates with
// recovery. Intensity 1 is a vigorous obstacle hit.
func (b *builder) stumble(sec, intensity float64) {
	n := b.steps(sec)
	lat := imu.Vec3{Y: 1}
	for i := 0; i < n; i++ {
		f := float64(i) / float64(n)
		// Dip below 1 g, then an over-g recovery push.
		mag := 1 - 0.5*intensity*math.Sin(f*math.Pi) + 0.7*intensity*math.Sin(2*f*math.Pi)*f
		acc := b.g.Scale(mag).Add(lat.Scale(0.3 * intensity * b.rng.NormFloat64()))
		gyro := imu.Vec3{
			X: 150 * intensity * b.rng.NormFloat64() * math.Sin(f*math.Pi),
			Y: 150 * intensity * b.rng.NormFloat64() * math.Sin(f*math.Pi),
			Z: 80 * intensity * b.rng.NormFloat64() * math.Sin(f*math.Pi),
		}
		b.emit(acc, gyro)
	}
}

// seatedStart initialises a trial that begins in a chair.
func (b *builder) seatedStart() {
	b.g = gravitySeated.Normalize()
	b.rest(b.jitter(0.8, 1.5), 0.6)
}
