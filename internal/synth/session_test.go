package synth

import (
	"math/rand"
	"testing"
)

func TestGenerateSessionBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	subj := NewSubject(1, rng)
	s, err := GenerateSession(subj, SessionConfig{Minutes: 2, FallRate: 30}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Trial.Samples) < 2*60*100 {
		t.Fatalf("session too short: %d samples", len(s.Trial.Samples))
	}
	if s.DurationHours() <= 0.03 {
		t.Fatalf("duration %f h", s.DurationHours())
	}
	if len(s.Events) < 5 {
		t.Fatalf("only %d episodes", len(s.Events))
	}
	// Events must be ordered and in range, with consistent annotations.
	prev := -1
	for _, ev := range s.Events {
		if ev.Start <= prev {
			t.Fatal("events out of order")
		}
		prev = ev.Start
		if ev.Start >= len(s.Trial.Samples) {
			t.Fatal("event beyond stream")
		}
		if ev.FallOnset >= 0 {
			if !(ev.Start <= ev.FallOnset && ev.FallOnset < ev.Impact && ev.Impact <= len(s.Trial.Samples)) {
				t.Fatalf("bad fall annotation %+v", ev)
			}
			task, _ := TaskByID(ev.Task)
			if !task.IsFall() {
				t.Fatalf("ADL task %d annotated as fall", ev.Task)
			}
		}
	}
}

func TestGenerateSessionFallRate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	subj := NewSubject(1, rng)
	// High rate over a longish session: expect at least a few falls.
	s, err := GenerateSession(subj, SessionConfig{Minutes: 4, FallRate: 60}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Falls()) == 0 {
		t.Fatal("no falls at 60/hour over 4 minutes")
	}
	// Negative rate disables falls.
	s, err = GenerateSession(subj, SessionConfig{Minutes: 1, FallRate: -1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Falls()) != 0 {
		t.Fatal("falls generated with FallRate < 0")
	}
}

func TestGenerateSessionTaskFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	subj := NewSubject(1, rng)
	s, err := GenerateSession(subj, SessionConfig{
		Minutes: 1, FallRate: 60, Tasks: []int{6, 8, 30},
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range s.Events {
		if ev.Task != 6 && ev.Task != 8 && ev.Task != 30 {
			t.Fatalf("task %d escaped the filter", ev.Task)
		}
	}
	// Filter with no ADLs is an error.
	if _, err := GenerateSession(subj, SessionConfig{Minutes: 1, Tasks: []int{30}}, rng); err == nil {
		t.Fatal("fall-only vocabulary accepted")
	}
}

func TestSessionStreamContinuity(t *testing.T) {
	// No teleporting: consecutive samples must not jump unphysically
	// (the recovery episodes are meant to smooth fall → next ADL).
	rng := rand.New(rand.NewSource(4))
	subj := NewSubject(1, rng)
	s, err := GenerateSession(subj, SessionConfig{Minutes: 1, FallRate: 30}, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(s.Trial.Samples); i++ {
		d := s.Trial.Samples[i].Acc.Sub(s.Trial.Samples[i-1].Acc).Norm()
		if d > 8 {
			t.Fatalf("acceleration jump of %.1f g between samples %d and %d", d, i-1, i)
		}
	}
}
