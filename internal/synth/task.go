// Package synth generates synthetic IMU trials for all 44 activities
// of the paper's Table II. The real datasets (KFall and the
// proprietary Protechto self-collected dataset) are not available in
// this environment, so this package is the documented substitution:
// a biomechanical trajectory model that reproduces the *signal
// structure* the detector relies on — gravity-referenced posture,
// gait oscillation, the free-fall collapse of acceleration magnitude
// with a rotation burst during falling, impact transients and
// post-fall stillness — with per-subject and per-trial variation,
// frame-accurate fall-onset/impact annotations, and the two source
// flavours (KFall: m/s², rotated frame; worksite: g, native frame)
// so the alignment pipeline is genuinely exercised.
package synth

import "fmt"

// Category classifies a task for reporting; fall categories follow
// the paper's macro-categories (§II-B).
type Category int

const (
	// ADLStatic covers stationary activities (stand, sit, lie).
	ADLStatic Category = iota
	// ADLLocomotion covers walking, jogging, stairs.
	ADLLocomotion
	// ADLTransition covers posture changes (sit down, lie down, bend).
	ADLTransition
	// ADLNearFall covers the hard negatives (jump, stumble, collapse
	// into a chair) whose signals flirt with the fall signature.
	ADLNearFall
	// FallFromWalking covers slips/trips/fainting during gait.
	FallFromWalking
	// FallFromSitting covers falls out of or onto a seat.
	FallFromSitting
	// FallFromStanding covers falls during posture transitions.
	FallFromStanding
	// FallFromHeight covers ladder/scaffold falls (worksite-specific).
	FallFromHeight
)

// IsFall reports whether the category describes a fall.
func (c Category) IsFall() bool { return c >= FallFromWalking }

// Task is one Table II activity.
type Task struct {
	ID       int
	Name     string
	Category Category
	// InKFall marks the 36 tasks (21 ADLs + 15 falls) present in the
	// KFall-style dataset; the remaining 8 are worksite extensions.
	InKFall bool
	// Red marks ADLs the paper colours red in Table IVb: activities
	// that at-risk wearers (elderly, construction workers in harness)
	// rarely perform, so their false positives matter less.
	Red bool
}

// IsFall reports whether the task ends in a fall.
func (t Task) IsFall() bool { return t.Category.IsFall() }

// tasks is the full Table II registry, indexed by ID-1.
var tasks = []Task{
	{1, "Stand for 30 seconds", ADLStatic, true, false},
	{2, "Stand, slowly bend, tie shoe lace, and get up", ADLTransition, true, false},
	{3, "Pick up an object from the floor", ADLTransition, true, false},
	{4, "Gently jump (try to reach an object)", ADLNearFall, true, true},
	{5, "Stand, sit to the ground, wait, and get up", ADLTransition, true, false},
	{6, "Walk normally with turn", ADLLocomotion, true, false},
	{7, "Walk quickly with turn", ADLLocomotion, true, false},
	{8, "Jog normally with turn", ADLLocomotion, true, true},
	{9, "Jog quickly with turn", ADLLocomotion, true, true},
	{10, "Stumble with obstacle while walking", ADLNearFall, true, true},
	{11, "Sit on a chair for 30 seconds", ADLStatic, true, false},
	{12, "Walk downstairs normally", ADLLocomotion, true, false},
	{13, "Sit down to a chair and get up, normal speed", ADLTransition, true, false},
	{14, "Sit down to a chair and get up, quickly", ADLTransition, true, true},
	{15, "Try to get up and collapse into a chair", ADLNearFall, true, true},
	{16, "Walk downstairs quickly", ADLLocomotion, true, true},
	{17, "Lie on the floor for 30 seconds", ADLStatic, true, false},
	{18, "Lie down to the floor and get up, normal speed", ADLTransition, true, false},
	{19, "Lie down to the floor and get up, quickly", ADLNearFall, true, true},
	{20, "Forward fall when trying to sit down", FallFromSitting, true, false},
	{21, "Backward fall when trying to sit down", FallFromSitting, true, false},
	{22, "Lateral fall when trying to sit down", FallFromSitting, true, false},
	{23, "Forward fall when trying to get up", FallFromStanding, true, false},
	{24, "Lateral fall when trying to get up", FallFromStanding, true, false},
	{25, "Forward fall while sitting, caused by fainting", FallFromSitting, true, false},
	{26, "Lateral fall while sitting, caused by fainting", FallFromSitting, true, false},
	{27, "Backward fall while sitting, caused by fainting", FallFromSitting, true, false},
	{28, "Vertical (forward) fall while walking caused by fainting", FallFromWalking, true, false},
	{29, "Fall while walking, use of hands to dampen fall (fainting)", FallFromWalking, true, false},
	{30, "Forward fall while walking caused by a trip", FallFromWalking, true, false},
	{31, "Forward fall while jogging caused by a trip", FallFromWalking, true, false},
	{32, "Forward fall while walking caused by a slip", FallFromWalking, true, false},
	{33, "Lateral fall while walking caused by a slip", FallFromWalking, true, false},
	{34, "Backward fall while walking caused by a slip", FallFromWalking, true, false},
	{35, "Walk upstairs normally", ADLLocomotion, true, false},
	{36, "Walk upstairs quickly", ADLLocomotion, true, true},
	{37, "Backward fall while slowly moving back", FallFromStanding, false, false},
	{38, "Backward fall while quickly moving back", FallFromStanding, false, false},
	{39, "Forward fall from height", FallFromHeight, false, false},
	{40, "Backward fall from height", FallFromHeight, false, false},
	{41, "Backward fall while trying to climb up the ladder", FallFromHeight, false, false},
	{42, "Backward fall while trying to climb down the ladder", FallFromHeight, false, false},
	{43, "Climb up and climb down the stairs", ADLLocomotion, false, false},
	{44, "Walk slowly and jump over the obstacle", ADLNearFall, false, true},
}

// NumTasks is the number of Table II activities.
const NumTasks = 44

// TaskByID returns the task with the given Table II id.
func TaskByID(id int) (Task, error) {
	if id < 1 || id > NumTasks {
		return Task{}, fmt.Errorf("synth: task id %d outside [1,%d]", id, NumTasks)
	}
	return tasks[id-1], nil
}

// AllTasks returns the full registry (a copy).
func AllTasks() []Task {
	out := make([]Task, len(tasks))
	copy(out, tasks)
	return out
}

// WorksiteTasks returns all 44 task ids (23 ADLs + 21 falls).
func WorksiteTasks() []int {
	ids := make([]int, 0, NumTasks)
	for _, t := range tasks {
		ids = append(ids, t.ID)
	}
	return ids
}

// KFallTasks returns the 36 KFall task ids (21 ADLs + 15 falls).
func KFallTasks() []int {
	var ids []int
	for _, t := range tasks {
		if t.InKFall {
			ids = append(ids, t.ID)
		}
	}
	return ids
}
