package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/imu"
)

// SessionEvent is one annotated episode inside a continuous session.
type SessionEvent struct {
	Task  int
	Start int // sample index of the episode start
	// FallOnset/Impact are absolute sample indices (−1 for ADLs).
	FallOnset, Impact int
}

// Session is a long continuous IMU stream of concatenated activities
// by one subject — what the detector actually sees in deployment, as
// opposed to the per-trial recordings used for training. It drives
// the false-activations-per-hour analysis.
type Session struct {
	Subject int
	Trial   dataset.Trial // continuous stream with no per-trial gaps
	Events  []SessionEvent
}

// SessionConfig shapes the generated stream.
type SessionConfig struct {
	// Minutes is the session duration (approximate; default 10).
	Minutes float64
	// FallRate is the expected number of fall episodes per hour
	// (default 4 — compressed relative to reality so sessions stay
	// testable; 0 disables falls entirely).
	FallRate float64
	// Tasks restricts the ADL vocabulary (nil = all worksite ADLs).
	Tasks []int
	// LongTaskSeconds bounds the static holds (default 8).
	LongTaskSeconds float64
}

func (c SessionConfig) withDefaults() SessionConfig {
	if c.Minutes <= 0 {
		c.Minutes = 10
	}
	if c.FallRate < 0 {
		c.FallRate = 0
	} else if c.FallRate == 0 {
		c.FallRate = 4
	}
	if c.LongTaskSeconds <= 0 {
		c.LongTaskSeconds = 8
	}
	return c
}

// GenerateSession builds one continuous session for the subject:
// ADL episodes drawn at random, with fall episodes interleaved at the
// configured hourly rate. Fall episodes end the faller on the ground;
// a recovery (get-up) segment follows so the stream stays plausible.
func GenerateSession(subj Subject, cfg SessionConfig, rng *rand.Rand) (*Session, error) {
	cfg = cfg.withDefaults()

	adls, falls := sessionVocabulary(cfg.Tasks)
	if len(adls) == 0 {
		return nil, fmt.Errorf("synth: session task filter leaves no ADLs")
	}
	targetSamples := int(cfg.Minutes * 60 * 100)
	// Probability that any given episode is a fall, from the hourly
	// rate and a ~10 s mean episode length.
	episodesPerHour := 3600.0 / 10
	pFall := cfg.FallRate / episodesPerHour
	if len(falls) == 0 {
		pFall = 0
	}

	s := &Session{Subject: subj.ID}
	s.Trial = dataset.Trial{
		Subject:   subj.ID,
		Task:      0, // a session is not a single Table II task
		Source:    dataset.SourceWorksite,
		FallOnset: -1,
		Impact:    -1,
	}
	for len(s.Trial.Samples) < targetSamples {
		isFall := pFall > 0 && rng.Float64() < pFall
		var taskID int
		if isFall {
			taskID = falls[rng.Intn(len(falls))]
		} else {
			taskID = adls[rng.Intn(len(adls))]
		}
		task, err := TaskByID(taskID)
		if err != nil {
			return nil, err
		}
		tr := GenerateTrial(subj, task, len(s.Events), cfg.LongTaskSeconds, rng)
		base := len(s.Trial.Samples)
		ev := SessionEvent{Task: taskID, Start: base, FallOnset: -1, Impact: -1}
		if tr.IsFall() {
			ev.FallOnset = base + tr.FallOnset
			ev.Impact = base + tr.Impact
		}
		s.Trial.Samples = append(s.Trial.Samples, tr.Samples...)
		s.Events = append(s.Events, ev)
		if tr.IsFall() {
			// Recovery: get up from the ground and resume.
			rec := recoveryEpisode(subj, rng)
			s.Trial.Samples = append(s.Trial.Samples, rec...)
		}
	}
	return s, nil
}

// recoveryEpisode produces a get-up-from-ground transition.
func recoveryEpisode(subj Subject, rng *rand.Rand) []imu.Sample {
	b := newBuilder(subj, rng)
	b.g = gravitySupine
	b.rest(b.jitter(0.5, 1.5), 0.4)
	b.tiltTo(b.jitter(1.2, 2)/subj.Speed, gravityUpright, 0.2)
	b.rest(b.jitter(0.5, 1), 1)
	return b.samples
}

// sessionVocabulary splits the allowed tasks into ADLs and falls.
func sessionVocabulary(filter []int) (adls, falls []int) {
	allowed := map[int]bool{}
	for _, id := range filter {
		allowed[id] = true
	}
	for _, task := range AllTasks() {
		if filter != nil && !allowed[task.ID] {
			continue
		}
		if task.IsFall() {
			falls = append(falls, task.ID)
		} else {
			adls = append(adls, task.ID)
		}
	}
	return adls, falls
}

// Falls returns the indices of fall events in the session.
func (s *Session) Falls() []SessionEvent {
	var out []SessionEvent
	for _, e := range s.Events {
		if e.FallOnset >= 0 {
			out = append(out, e)
		}
	}
	return out
}

// DurationHours returns the session length in hours.
func (s *Session) DurationHours() float64 {
	return float64(len(s.Trial.Samples)) / 100 / 3600
}
