package synth

import (
	"math"
	"math/rand"

	"repro/internal/imu"
)

// Canonical body-frame orientations of the gravity unit vector for the
// trunk-mounted sensor (rear of the safety jacket): standing upright
// puts gravity on +Z; lying changes which body axis carries it.
var (
	gravityUpright   = imu.Vec3{Z: 1}
	gravitySupine    = imu.Vec3{X: 1}  // on the back
	gravityProne     = imu.Vec3{X: -1} // on the front
	gravitySideLeft  = imu.Vec3{Y: 1}
	gravitySideRight = imu.Vec3{Y: -1}
	gravitySeated    = imu.Vec3{X: 0.26, Z: 0.97} // slight recline
)

// builder accumulates one trial's samples while tracking the current
// orientation (gravity direction in the body frame).
type builder struct {
	rng     *rand.Rand
	subj    Subject
	rate    float64
	samples []imu.Sample
	g       imu.Vec3 // current unit gravity direction in body frame
}

func newBuilder(subj Subject, rng *rand.Rand) *builder {
	if (subj.Mount == imu.Mat3{}) {
		// Hand-constructed subjects default to a perfectly aligned
		// sensor.
		subj.Mount = imu.Identity3()
	}
	return &builder{rng: rng, subj: subj, rate: 100, g: gravityUpright}
}

func (b *builder) dt() float64 { return 1 / b.rate }

// mark returns the index the next emitted sample will occupy.
func (b *builder) mark() int { return len(b.samples) }

// steps converts a duration in seconds (already subject-scaled by the
// caller where appropriate) to a sample count of at least 1.
func (b *builder) steps(sec float64) int {
	n := int(sec*b.rate + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

// emit appends one sample, mapping it through the subject's mounting
// misalignment and adding the subject's sensor noise. Euler channels
// are left zero: they are recomputed by the on-edge sensor fusion
// during dataset standardisation, exactly as on the real PCB.
func (b *builder) emit(acc, gyro imu.Vec3) {
	acc = b.subj.Mount.Apply(acc)
	gyro = b.subj.Mount.Apply(gyro)
	na := b.subj.NoiseAccG
	ng := b.subj.NoiseGyroDPS
	b.samples = append(b.samples, imu.Sample{
		Acc: imu.Vec3{
			X: acc.X + na*b.rng.NormFloat64(),
			Y: acc.Y + na*b.rng.NormFloat64(),
			Z: acc.Z + na*b.rng.NormFloat64(),
		},
		Gyro: imu.Vec3{
			X: gyro.X + ng*b.rng.NormFloat64(),
			Y: gyro.Y + ng*b.rng.NormFloat64(),
			Z: gyro.Z + ng*b.rng.NormFloat64(),
		},
	})
}

// rest holds the current posture for sec seconds with physiological
// tremor scaled by tremor (1 = normal standing sway).
func (b *builder) rest(sec, tremor float64) {
	n := b.steps(sec)
	// Slow postural sway at ~0.3 Hz.
	phase := b.rng.Float64() * 2 * math.Pi
	for i := 0; i < n; i++ {
		t := float64(i) * b.dt()
		sway := 0.01 * tremor * math.Sin(2*math.Pi*0.3*t+phase)
		acc := b.g.Scale(1 + sway)
		gyro := imu.Vec3{
			X: 1.5 * tremor * math.Sin(2*math.Pi*0.25*t+phase),
			Y: 1.5 * tremor * math.Cos(2*math.Pi*0.21*t+phase),
		}
		b.emit(acc, gyro)
	}
}

// gait emits locomotion: vertical bobbing at the step frequency plus
// lateral sway at half of it, with matching pitch/roll oscillation.
// freq in Hz, vertAmp in g, gyroAmp in deg/s.
func (b *builder) gait(sec, freq, vertAmp, gyroAmp float64) {
	n := b.steps(sec)
	freq *= b.subj.Speed
	vertAmp *= b.subj.Vigor
	gyroAmp *= b.subj.Vigor
	phase := b.rng.Float64() * 2 * math.Pi
	// Lateral axis orthogonal to gravity.
	lat := imu.Vec3{Y: 1}
	for i := 0; i < n; i++ {
		t := float64(i) * b.dt()
		vert := vertAmp * math.Sin(2*math.Pi*freq*t+phase)
		// Second harmonic gives the double-bump of heel strikes.
		vert += 0.4 * vertAmp * math.Sin(4*math.Pi*freq*t+2*phase)
		side := 0.3 * vertAmp * math.Sin(math.Pi*freq*t+phase)
		acc := b.g.Scale(1 + vert).Add(lat.Scale(side))
		gyro := imu.Vec3{
			X: gyroAmp * math.Sin(math.Pi*freq*t+phase),
			Y: gyroAmp * math.Sin(2*math.Pi*freq*t+phase+0.7),
			Z: 0.3 * gyroAmp * math.Sin(math.Pi*freq*t+phase+1.1),
		}
		b.emit(acc, gyro)
	}
}

// turn overlays a yaw rotation on standing/walking for sec seconds.
func (b *builder) turn(sec, yawRateDPS float64) {
	n := b.steps(sec)
	for i := 0; i < n; i++ {
		b.emit(b.g, imu.Vec3{Z: yawRateDPS})
	}
}

// tiltTo smoothly reorients gravity from the current direction to
// target over sec seconds (posture transitions: bending, sitting,
// lying). The gyro reflects the instantaneous rotation rate; a small
// inertial surge accompanies the motion, scaled by surge (g).
func (b *builder) tiltTo(sec float64, target imu.Vec3, surge float64) {
	target = target.Normalize()
	if target.Norm() == 0 {
		b.rest(sec, 1)
		return
	}
	// Total angle between orientations.
	dot := b.g.Normalize().Dot(target)
	dot = math.Max(-1, math.Min(1, dot))
	total := math.Acos(dot)
	axis := b.g.Cross(target).Normalize()
	if axis.Norm() == 0 {
		// Collinear: nothing to do beyond holding posture.
		b.rest(sec, 1)
		b.g = target
		return
	}
	n := b.steps(sec)
	start := b.g
	prev := 0.0
	for i := 1; i <= n; i++ {
		f := float64(i) / float64(n)
		// Cosine easing: rate peaks mid-transition like real motion.
		ang := total * (1 - math.Cos(f*math.Pi)) / 2
		rate := (ang - prev) / b.dt() // rad/s
		prev = ang
		g := imu.Rodrigues(axis, ang).Apply(start)
		acc := g.Scale(1 + surge*math.Sin(f*math.Pi))
		gyro := axis.Scale(imu.RadToDeg(rate))
		b.emit(acc, gyro)
	}
	b.g = imu.Rodrigues(axis, total).Apply(start).Normalize()
}

// freefall emits the falling phase: acceleration magnitude collapses
// from 1 g toward residual (true free fall → 0; guarded or partially
// supported falls retain more), while the body rotates about axis at
// up to rotRate deg/s and gravity re-orients toward target. Returns
// nothing; callers bracket it with mark() to annotate onset/impact.
func (b *builder) freefall(sec, residual, rotRate float64, axis, target imu.Vec3) {
	n := b.steps(sec)
	start := b.g
	target = target.Normalize()
	dot := math.Max(-1, math.Min(1, start.Normalize().Dot(target)))
	total := math.Acos(dot)
	rotAxis := start.Cross(target).Normalize()
	if rotAxis.Norm() == 0 {
		rotAxis = axis.Normalize()
	}
	for i := 1; i <= n; i++ {
		f := float64(i) / float64(n)
		// Magnitude decays with an early knee: the support is lost
		// quickly, then the body is ballistic.
		mag := residual + (1-residual)*math.Exp(-4*f)
		ang := total * f * f // accelerating rotation
		g := imu.Rodrigues(rotAxis, ang).Apply(start)
		acc := g.Scale(mag)
		// Rotation rate ramps up as the body pivots.
		gyro := axis.Normalize().Scale(rotRate * f)
		// Tumbling adds off-axis rate noise.
		gyro.X += 0.15 * rotRate * b.rng.NormFloat64() * f
		gyro.Y += 0.15 * rotRate * b.rng.NormFloat64() * f
		b.emit(acc, gyro)
	}
	b.g = imu.Rodrigues(rotAxis, total).Apply(start).Normalize()
}

// interruptedFreefall is freefall with a partial arrest midway — a
// hand catching the ladder rail, clothing snagging scaffolding — that
// briefly restores support before the fall resumes. This is what
// makes real falls from height hard for a detector: the clean
// ballistic signature is broken into shorter ambiguous episodes that
// resemble a recovered stumble or a jump.
func (b *builder) interruptedFreefall(sec, residual, rotRate float64, axis, target imu.Vec3) {
	first := sec * b.jitter(0.3, 0.5)
	arrest := b.jitter(0.06, 0.12)
	rest := sec - first
	b.freefall(first, residual, rotRate*0.7, axis, b.g) // initial drop, little reorientation
	// Partial arrest: support partially restored, rotation stalls.
	n := b.steps(arrest)
	hold := b.jitter(0.5, 0.9)
	for i := 0; i < n; i++ {
		f := float64(i) / float64(n)
		b.emit(b.g.Scale(hold*(1-0.3*f)), imu.Vec3{
			X: 40 * b.rng.NormFloat64(),
			Y: 40 * b.rng.NormFloat64(),
		})
	}
	b.freefall(rest, residual, rotRate, axis, target)
}

// impact emits the ground-contact transient: a damped oscillation
// peaking at peakG along the (new) gravity direction with a matching
// gyro jolt, lasting about 120 ms.
func (b *builder) impact(peakG float64) {
	n := b.steps(0.12)
	dir := b.g
	for i := 0; i < n; i++ {
		t := float64(i) * b.dt()
		env := math.Exp(-t / 0.03)
		osc := math.Cos(2 * math.Pi * 18 * t)
		acc := dir.Scale(1 + (peakG-1)*env*math.Abs(osc))
		gyro := imu.Vec3{
			X: 120 * env * b.rng.NormFloat64(),
			Y: 120 * env * b.rng.NormFloat64(),
			Z: 60 * env * b.rng.NormFloat64(),
		}
		b.emit(acc, gyro)
	}
}

// hop emits a voluntary jump: crouch dip, push-off surge, ballistic
// flight at low residual g, then a landing transient of landG. This is
// the near-fall signature that drives the paper's Table IVb hard
// negatives (tasks 4 and 44).
func (b *builder) hop(flightSec, landG float64) {
	// Crouch: unweighting dip.
	n := b.steps(0.25)
	for i := 0; i < n; i++ {
		f := float64(i) / float64(n)
		b.emit(b.g.Scale(1-0.35*math.Sin(f*math.Pi)), imu.Vec3{Y: 20 * math.Sin(f*math.Pi)})
	}
	// Push-off: over-g surge.
	n = b.steps(0.15)
	for i := 0; i < n; i++ {
		f := float64(i) / float64(n)
		b.emit(b.g.Scale(1+0.8*b.subj.Vigor*math.Sin(f*math.Pi)), imu.Vec3{Y: -25 * math.Sin(f*math.Pi)})
	}
	// Flight: near free fall, but upright and with little rotation —
	// exactly what makes it confusable with a vertical fall.
	n = b.steps(flightSec)
	for i := 0; i < n; i++ {
		b.emit(b.g.Scale(0.12), imu.Vec3{Y: 10 * b.rng.NormFloat64()})
	}
	b.impact(landG)
}

// ladderClimb emits slow rhythmic climbing with rail-grab pauses.
func (b *builder) ladderClimb(sec float64) {
	n := b.steps(sec)
	phase := b.rng.Float64() * 2 * math.Pi
	// Slightly leaned into the ladder.
	lean := imu.Rodrigues(imu.Vec3{Y: 1}, imu.DegToRad(12)).Apply(gravityUpright)
	for i := 0; i < n; i++ {
		t := float64(i) * b.dt()
		step := 0.12 * math.Sin(2*math.Pi*0.8*b.subj.Speed*t+phase)
		acc := lean.Scale(1 + step)
		gyro := imu.Vec3{
			X: 12 * math.Sin(2*math.Pi*0.8*b.subj.Speed*t+phase),
			Y: 8 * math.Cos(2*math.Pi*0.8*b.subj.Speed*t+phase),
		}
		b.emit(acc, gyro)
	}
	b.g = lean
}

// jitter draws a uniform value in [lo, hi].
func (b *builder) jitter(lo, hi float64) float64 {
	return lo + (hi-lo)*b.rng.Float64()
}

// pickSide returns +1 or −1.
func (b *builder) pickSide() float64 {
	if b.rng.Intn(2) == 0 {
		return 1
	}
	return -1
}
