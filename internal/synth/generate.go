package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/imu"
)

// Options configures dataset synthesis.
type Options struct {
	// TrialsPerTask is the number of repetitions per subject per task
	// (default 1).
	TrialsPerTask int
	// LongTaskSeconds replaces the paper's 30-second static holds
	// (stand / sit / lie "for 30 seconds") to keep synthetic volume
	// manageable; default 8 s. Set 30 for faithful durations.
	LongTaskSeconds float64
	// Tasks restricts generation to the given Table II ids; nil means
	// every task available in the source flavour.
	Tasks []int
}

func (o Options) withDefaults() Options {
	if o.TrialsPerTask <= 0 {
		o.TrialsPerTask = 1
	}
	if o.LongTaskSeconds <= 0 {
		o.LongTaskSeconds = 8
	}
	return o
}

// mix derives a deterministic per-trial seed so each (subject, task,
// trial) triple is independent of generation order. SplitMix64-style.
func mix(vals ...int64) int64 {
	z := uint64(0x9E3779B97F4A7C15)
	for _, v := range vals {
		z ^= uint64(v) + 0x9E3779B97F4A7C15 + (z << 6) + (z >> 2)
		z *= 0xBF58476D1CE4E5B9
		z ^= z >> 27
	}
	return int64(z & 0x7FFFFFFFFFFFFFFF)
}

// GenerateWorksite synthesises the self-collected-flavour dataset:
// subject ids 1..n, all 44 tasks, accelerations in g, native frame.
func GenerateWorksite(numSubjects int, opt Options, seed int64) (*dataset.Dataset, error) {
	return generate(numSubjects, 1, WorksiteTasks(), dataset.SourceWorksite, opt, seed)
}

// GenerateKFall synthesises the KFall-flavour dataset: subject ids
// 101..100+n, the 36 KFall tasks, accelerations in m/s², and the
// sensor frame rotated by KFallFrameRotation.
func GenerateKFall(numSubjects int, opt Options, seed int64) (*dataset.Dataset, error) {
	return generate(numSubjects, 101, KFallTasks(), dataset.SourceKFall, opt, seed)
}

func generate(numSubjects, firstID int, sourceTasks []int, src dataset.Source, opt Options, seed int64) (*dataset.Dataset, error) {
	if numSubjects <= 0 {
		return nil, fmt.Errorf("synth: need at least one subject, got %d", numSubjects)
	}
	opt = opt.withDefaults()
	taskIDs := sourceTasks
	if opt.Tasks != nil {
		allowed := map[int]bool{}
		for _, id := range sourceTasks {
			allowed[id] = true
		}
		taskIDs = nil
		for _, id := range opt.Tasks {
			if allowed[id] {
				taskIDs = append(taskIDs, id)
			}
		}
		if len(taskIDs) == 0 {
			return nil, fmt.Errorf("synth: task filter %v leaves no tasks for %v", opt.Tasks, src)
		}
	}

	subjRng := rand.New(rand.NewSource(mix(seed, int64(firstID))))
	subjects := Cohort(numSubjects, firstID, subjRng)

	d := &dataset.Dataset{}
	for _, subj := range subjects {
		for _, id := range taskIDs {
			task, err := TaskByID(id)
			if err != nil {
				return nil, err
			}
			for trial := 0; trial < opt.TrialsPerTask; trial++ {
				rng := rand.New(rand.NewSource(mix(seed, int64(subj.ID), int64(id), int64(trial))))
				tr := GenerateTrial(subj, task, trial, opt.LongTaskSeconds, rng)
				if src == dataset.SourceKFall {
					toKFallFlavour(&tr)
				}
				if err := tr.Validate(); err != nil {
					return nil, err
				}
				d.Trials = append(d.Trials, tr)
			}
		}
	}
	return d, nil
}

// toKFallFlavour converts a canonical trial to the KFall acquisition
// convention: accelerations in m/s² and the sensor frame rotated by
// KFallFrameRotation (the transform dataset.Standardize undoes).
func toKFallFlavour(t *dataset.Trial) {
	rot := dataset.KFallFrameRotation()
	for i := range t.Samples {
		s := t.Samples[i]
		s.Acc = s.Acc.Scale(imu.StandardGravity)
		t.Samples[i] = rot.Rotate(s)
	}
	t.Source = dataset.SourceKFall
}

// GenerateTrial synthesises one execution of the task by the subject.
// Fall trials carry frame-accurate FallOnset/Impact annotations (the
// synthetic equivalent of the paper's video-synchronised labelling).
func GenerateTrial(subj Subject, task Task, trialIx int, longSec float64, rng *rand.Rand) dataset.Trial {
	b := newBuilder(subj, rng)
	onset, impact := -1, -1
	sp := 1 / subj.Speed // slower subjects take longer over transitions

	// fall brackets the falling phase with onset/impact marks and
	// appends the post-fall stillness.
	fall := func(durSec, residual, rotRate float64, axis, target imu.Vec3, impactG float64) {
		onset = b.mark()
		b.freefall(durSec, residual, rotRate, axis, target)
		impact = b.mark()
		b.impact(impactG)
		b.rest(b.jitter(1.2, 2.2), 0.3)
	}
	// interruptedFall is the height-fall variant: a partial arrest
	// (rail grab, snag) breaks the ballistic phase in two, which is
	// what makes these falls the hardest class to recognise (paper
	// Table IVa: tasks 39/40 top the miss list).
	interruptedFall := func(durSec, residual, rotRate float64, axis, target imu.Vec3, impactG float64) {
		onset = b.mark()
		b.interruptedFreefall(durSec, residual, rotRate, axis, target)
		impact = b.mark()
		b.impact(impactG)
		b.rest(b.jitter(1.2, 2.2), 0.3)
	}

	switch task.ID {
	case 1: // stand
		b.rest(longSec, 1)
	case 2: // bend, tie shoe lace, get up
		b.rest(1, 1)
		b.tiltTo(1.5*sp, bentForward(75), 0.12)
		b.rest(b.jitter(1.5, 2.5), 1)
		b.tiltTo(1.5*sp, gravityUpright, 0.12)
		b.rest(1, 1)
	case 3: // pick up object
		b.rest(0.6, 1)
		b.tiltTo(0.8*sp, bentForward(80), 0.18)
		b.rest(0.4, 1)
		b.tiltTo(0.8*sp, gravityUpright, 0.18)
		b.rest(0.6, 1)
	case 4: // gentle jump
		b.rest(1, 1)
		b.hop(b.jitter(0.2, 0.26), 2.2)
		b.rest(1, 1)
	case 5: // sit to ground and get up
		b.rest(0.6, 1)
		b.tiltTo(1.2*sp, gravitySeated, 0.2)
		b.bump(1.4)
		b.rest(b.jitter(1.5, 2.5), 0.8)
		b.tiltTo(1.2*sp, gravityUpright, 0.2)
		b.rest(0.6, 1)
	case 6: // walk with turn
		b.gait(longSec*0.4, 1.8, 0.12, 25)
		b.turn(1, 60)
		b.gait(longSec*0.4, 1.8, 0.12, 25)
	case 7: // walk quickly with turn
		b.gait(longSec*0.4, 2.2, 0.2, 35)
		b.turn(0.8, 80)
		b.gait(longSec*0.4, 2.2, 0.2, 35)
	case 8: // jog with turn
		b.gait(longSec*0.4, 2.6, 0.4, 55)
		b.turn(0.7, 95)
		b.gait(longSec*0.4, 2.6, 0.4, 55)
	case 9: // jog quickly with turn
		b.gait(longSec*0.4, 3.0, 0.5, 70)
		b.turn(0.6, 110)
		b.gait(longSec*0.4, 3.0, 0.5, 70)
	case 10: // stumble while walking (recovered)
		b.gait(b.jitter(1.5, 2.5), 1.9, 0.14, 28)
		b.stumble(b.jitter(0.2, 0.3), 0.8)
		b.gait(b.jitter(1.5, 2.5), 1.8, 0.12, 25)
	case 11: // sit on chair
		b.rest(0.6, 1)
		b.tiltTo(1.0*sp, gravitySeated, 0.1)
		b.rest(longSec, 0.6)
		b.tiltTo(1.0*sp, gravityUpright, 0.1)
		b.rest(0.6, 1)
	case 12: // downstairs
		b.gait(longSec*0.8, 2.0, 0.22, 35)
	case 13: // sit down, get up (normal)
		b.rest(0.6, 1)
		b.tiltTo(0.9*sp, gravitySeated, 0.15)
		b.bump(1.25)
		b.rest(b.jitter(1.0, 2.0), 0.6)
		b.tiltTo(0.9*sp, gravityUpright, 0.15)
		b.rest(0.6, 1)
	case 14: // sit down, get up (quick)
		b.rest(0.5, 1)
		b.tiltTo(0.45*sp, gravitySeated, 0.3)
		b.bump(1.7)
		b.rest(b.jitter(0.8, 1.4), 0.6)
		b.tiltTo(0.5*sp, gravityUpright, 0.3)
		b.rest(0.5, 1)
	case 15: // collapse into a chair (hard negative)
		b.rest(0.5, 1)
		b.tiltTo(1.0*sp, gravitySeated, 0.1)
		b.rest(b.jitter(0.8, 1.5), 0.6)
		b.tiltTo(0.4*sp, halfRisen(), 0.25) // attempt to rise
		b.freefall(b.jitter(0.16, 0.24), 0.55, b.jitter(40, 70), imu.Vec3{Y: -1}, gravitySeated)
		b.impact(b.jitter(1.6, 2.0))
		b.rest(b.jitter(1.0, 2.0), 0.6)
	case 16: // downstairs quickly
		b.gait(longSec*0.8, 2.4, 0.3, 45)
	case 17: // lie on floor
		b.rest(0.5, 1)
		b.tiltTo(1.5*sp, gravitySupine, 0.12)
		b.rest(longSec, 0.4)
	case 18: // lie down, get up (normal)
		b.rest(0.5, 1)
		b.tiltTo(1.3*sp, gravitySupine, 0.15)
		b.bump(1.2)
		b.rest(b.jitter(1.5, 2.5), 0.4)
		b.tiltTo(1.3*sp, gravityUpright, 0.15)
		b.rest(0.5, 1)
	case 19: // lie down quickly (hard negative)
		b.rest(0.5, 1)
		b.freefall(b.jitter(0.14, 0.2), 0.65, b.jitter(60, 90), imu.Vec3{Y: -1}, gravitySupine)
		b.impact(b.jitter(1.4, 1.7))
		b.rest(b.jitter(1.0, 2.0), 0.4)
		b.tiltTo(0.8*sp, gravityUpright, 0.25)
		b.rest(0.5, 1)
	case 20: // forward fall trying to sit
		b.rest(0.6, 1)
		b.tiltTo(0.4*sp, gravitySeated, 0.2)
		fall(b.jitter(0.36, 0.48), 0.38, b.jitter(160, 220), imu.Vec3{Y: 1}, gravityProne, b.jitter(3.0, 3.6))
	case 21: // backward fall trying to sit
		b.rest(0.6, 1)
		b.tiltTo(0.4*sp, gravitySeated, 0.2)
		fall(b.jitter(0.32, 0.44), 0.45, b.jitter(130, 180), imu.Vec3{Y: -1}, gravitySupine, b.jitter(2.8, 3.4))
	case 22: // lateral fall trying to sit
		b.rest(0.6, 1)
		b.tiltTo(0.4*sp, gravitySeated, 0.2)
		side := b.pickSide()
		fall(b.jitter(0.34, 0.46), 0.42, b.jitter(130, 180), imu.Vec3{X: side}, sideTarget(side), b.jitter(2.8, 3.4))
	case 23: // forward fall trying to get up
		b.seatedStart()
		b.tiltTo(0.5*sp, halfRisen(), 0.2)
		fall(b.jitter(0.36, 0.48), 0.35, b.jitter(170, 230), imu.Vec3{Y: 1}, gravityProne, b.jitter(3.2, 3.8))
	case 24: // lateral fall trying to get up
		b.seatedStart()
		b.tiltTo(0.5*sp, halfRisen(), 0.2)
		side := b.pickSide()
		fall(b.jitter(0.38, 0.5), 0.35, b.jitter(160, 210), imu.Vec3{X: side}, sideTarget(side), b.jitter(3.2, 3.8))
	case 25: // forward fall while sitting (fainting)
		b.seatedStart()
		fall(b.jitter(0.38, 0.5), 0.42, b.jitter(150, 200), imu.Vec3{Y: 1}, gravityProne, b.jitter(2.8, 3.4))
	case 26: // lateral fall while sitting (fainting)
		b.seatedStart()
		side := b.pickSide()
		fall(b.jitter(0.36, 0.48), 0.45, b.jitter(130, 180), imu.Vec3{X: side}, sideTarget(side), b.jitter(2.8, 3.4))
	case 27: // backward fall while sitting (fainting)
		b.seatedStart()
		fall(b.jitter(0.34, 0.46), 0.5, b.jitter(90, 130), imu.Vec3{Y: -1}, gravitySupine, b.jitter(2.6, 3.2))
	case 28: // vertical collapse while walking (fainting)
		b.gait(b.jitter(2, 3.5), 1.8, 0.12, 25)
		onset = b.mark()
		// Crumpling straight down: little reorientation, little spin.
		b.freefall(b.jitter(0.35, 0.5), 0.4, b.jitter(30, 60), imu.Vec3{Y: 1}, gravityUpright)
		impact = b.mark()
		b.impact(b.jitter(3.0, 3.6))
		b.tiltTo(0.3, gravityProne, 0.2) // slump after hitting knees
		b.rest(b.jitter(1.2, 2.2), 0.3)
	case 29: // fall while walking, damped with hands (fainting)
		b.gait(b.jitter(2, 3.5), 1.8, 0.12, 25)
		fall(b.jitter(0.36, 0.5), 0.48, b.jitter(140, 190), imu.Vec3{Y: 1}, gravityProne, b.jitter(2.1, 2.6))
	case 30: // forward fall, walking, trip
		b.gait(b.jitter(2, 4), 1.9, 0.14, 28)
		b.stumble(0.08, 0.9)
		fall(b.jitter(0.42, 0.6), 0.3, b.jitter(200, 280), imu.Vec3{Y: 1}, gravityProne, b.jitter(3.8, 4.6))
	case 31: // forward fall, jogging, trip
		b.gait(b.jitter(2, 3.5), 2.6, 0.4, 55)
		b.stumble(0.07, 1.1)
		fall(b.jitter(0.38, 0.52), 0.28, b.jitter(230, 300), imu.Vec3{Y: 1}, gravityProne, b.jitter(4.4, 5.4))
	case 32: // forward fall, walking, slip
		b.gait(b.jitter(2, 4), 1.9, 0.14, 28)
		fall(b.jitter(0.45, 0.6), 0.32, b.jitter(180, 260), imu.Vec3{Y: 1}, gravityProne, b.jitter(3.6, 4.4))
	case 33: // lateral fall, walking, slip
		b.gait(b.jitter(2, 4), 1.9, 0.14, 28)
		side := b.pickSide()
		fall(b.jitter(0.4, 0.55), 0.42, b.jitter(120, 170), imu.Vec3{X: side}, sideTarget(side), b.jitter(3.4, 4.2))
	case 34: // backward fall, walking, slip
		b.gait(b.jitter(2, 4), 1.9, 0.14, 28)
		fall(b.jitter(0.42, 0.58), 0.3, b.jitter(170, 240), imu.Vec3{Y: -1}, gravitySupine, b.jitter(3.8, 4.6))
	case 35: // upstairs
		b.gait(longSec*0.8, 1.9, 0.16, 30)
	case 36: // upstairs quickly
		b.gait(longSec*0.8, 2.3, 0.24, 40)
	case 37: // backward fall, slow backward walk
		b.gait(b.jitter(1.5, 3), 1.2, 0.08, 18)
		fall(b.jitter(0.4, 0.55), 0.35, b.jitter(150, 200), imu.Vec3{Y: -1}, gravitySupine, b.jitter(3.2, 4.0))
	case 38: // backward fall, quick backward walk
		b.gait(b.jitter(1.5, 3), 1.8, 0.14, 28)
		fall(b.jitter(0.45, 0.6), 0.25, b.jitter(220, 280), imu.Vec3{Y: -1}, gravitySupine, b.jitter(4.0, 4.8))
	case 39: // forward fall from height
		b.ladderClimb(b.jitter(2, 3.5))
		// Long, clean ballistic drop with very little rotation: the
		// signature that overlaps jumping flight, the paper's hardest
		// fall class (16 % missed).
		interruptedFall(b.jitter(0.55, 0.8), 0.2, b.jitter(30, 70), imu.Vec3{Y: 1}, gravityProne, b.jitter(5.5, 7.0))
	case 40: // backward fall from height
		b.ladderClimb(b.jitter(2, 3.5))
		interruptedFall(b.jitter(0.5, 0.75), 0.22, b.jitter(40, 80), imu.Vec3{Y: -1}, gravitySupine, b.jitter(5.2, 6.6))
	case 41: // backward fall climbing up the ladder
		b.ladderClimb(b.jitter(2, 3.5))
		interruptedFall(b.jitter(0.45, 0.65), 0.25, b.jitter(60, 100), imu.Vec3{Y: -1}, gravitySupine, b.jitter(4.4, 5.4))
	case 42: // backward fall climbing down the ladder
		b.ladderClimb(b.jitter(2, 3.5))
		interruptedFall(b.jitter(0.45, 0.6), 0.28, b.jitter(70, 110), imu.Vec3{Y: -1}, gravitySupine, b.jitter(4.2, 5.2))
	case 43: // climb up and down the stairs
		b.gait(longSec*0.4, 1.9, 0.16, 30)
		b.turn(0.8, 90)
		b.gait(longSec*0.4, 2.0, 0.2, 33)
	case 44: // walk slowly and jump over the obstacle (hardest negative)
		b.gait(b.jitter(1.5, 2.5), 1.5, 0.1, 20)
		b.hop(b.jitter(0.26, 0.34), 2.6)
		b.gait(b.jitter(1.5, 2.5), 1.5, 0.1, 20)
	default:
		b.rest(longSec, 1)
	}

	return dataset.Trial{
		Subject:   subj.ID,
		Task:      task.ID,
		Index:     trialIx,
		Source:    dataset.SourceWorksite,
		Samples:   b.samples,
		FallOnset: onset,
		Impact:    impact,
	}
}

// bentForward returns the gravity direction for a forward trunk bend
// of deg degrees.
func bentForward(deg float64) imu.Vec3 {
	return imu.Rodrigues(imu.Vec3{Y: 1}, imu.DegToRad(deg)).Apply(gravityUpright)
}

// halfRisen is the posture mid-way between seated and upright.
func halfRisen() imu.Vec3 {
	return gravitySeated.Add(gravityUpright).Normalize()
}

// sideTarget returns the lying-on-side gravity direction for ±1.
func sideTarget(side float64) imu.Vec3 {
	if side > 0 {
		return gravitySideLeft
	}
	return gravitySideRight
}
