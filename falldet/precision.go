package falldet

import (
	"fmt"

	"repro/internal/cascade"
	"repro/internal/dataset"
	"repro/internal/edge"
	"repro/internal/eval"
	"repro/internal/imu"
	"repro/internal/model"
	"repro/internal/tensor"
)

// Precision selects the compiled scalar width of a streaming pipeline.
// Training always runs float64 and produces one float64 checkpoint;
// the precision choice is made at deployment time, when the detector
// is wrapped in a streaming pipeline — a float32 pipeline lowers the
// checkpoint's weights once at construction and scores every window in
// single precision. See DESIGN.md §14 for what stays float64 at every
// width (filter accumulators, sensor health, training, metrics).
type Precision int

const (
	// PrecisionF64 is the double-precision reference pipeline — the
	// default, bit-identical to the pre-generic implementation.
	PrecisionF64 Precision = iota
	// PrecisionF32 is the lowered single-precision deployment
	// pipeline.
	PrecisionF32
)

// String names the precision the way results headers spell it.
func (p Precision) String() string {
	switch p {
	case PrecisionF64:
		return "f64"
	case PrecisionF32:
		return "f32"
	}
	return fmt.Sprintf("precision(%d)", int(p))
}

// ParsePrecision reads the spellings String produces ("f64", "f32";
// "float64"/"float32" are accepted as aliases).
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "f64", "float64":
		return PrecisionF64, nil
	case "f32", "float32":
		return PrecisionF32, nil
	}
	return 0, fmt.Errorf("falldet: unknown precision %q (want f64 or f32)", s)
}

// Float32 streaming surface, mirroring the float64 re-exports.
type (
	// StreamDetectorF32 is the real-time pipeline compiled at float32.
	StreamDetectorF32 = edge.DetectorOf[float32]
	// StreamCascadeF32 is the supervised three-tier pipeline compiled
	// at float32.
	StreamCascadeF32 = cascade.CascadeOf[float32]
)

// StreamF32 wraps the detector in a float32 streaming pipeline: the
// float64 checkpoint's weights are lowered once here, and every
// subsequent window scores in single precision. The float64 training
// artefact is untouched — Stream and StreamF32 can coexist on one
// Detector.
func (det *Detector) StreamF32() (*StreamDetectorF32, error) {
	return streamAt[float32](det, det.model)
}

// streamAt is streamWith at an arbitrary compiled width.
func streamAt[S tensor.Scalar](det *Detector, clf model.Classifier) (*edge.DetectorOf[S], error) {
	thr := det.cfg.Threshold
	if thr == 0 {
		thr = edge.ThresholdAlways
	}
	return edge.NewDetectorOf[S](clf, edge.DetectorConfig{
		WindowMS:  det.cfg.WindowMS,
		Overlap:   det.cfg.Overlap,
		Threshold: thr,
	})
}

// StreamF32 instantiates the supervised cascade at float32; both CNN
// tiers lower their weights at construction, the threshold floor and
// the supervisor are width-independent.
func (cd *CascadeDetector) StreamF32() (*StreamCascadeF32, error) {
	return cascadeStreamAt[float32](cd, cd.primary.model, cd.fallback.model)
}

// cascadeStreamAt is CascadeDetector.streamWith at an arbitrary
// compiled width.
func cascadeStreamAt[S tensor.Scalar](cd *CascadeDetector, primary, fallback model.Classifier) (*cascade.CascadeOf[S], error) {
	winSamples := cd.primary.cfg.WindowMS * dataset.SampleRate / 1000
	shape := []int{winSamples, imu.NumChannels}
	cfg := cascade.Config{
		WindowMS: cd.primary.cfg.WindowMS,
		Overlap:  cd.primary.cfg.Overlap,
	}
	cfg.Threshold = cd.primary.cfg.Threshold
	if cfg.Threshold == 0 {
		cfg.Threshold = edge.ThresholdAlways
	}
	if nm, ok := cd.primary.model.(*model.NetModel); ok {
		cost, err := edge.ModelCost(nm.Net, shape)
		if err != nil {
			return nil, err
		}
		cfg.PrimaryCost = cost
	}
	if nm, ok := cd.fallback.model.(*model.NetModel); ok {
		cost, err := edge.ModelCost(nm.Net, shape)
		if err != nil {
			return nil, err
		}
		cfg.FallbackCost = cost
	}
	return cascade.NewOf[S](primary, fallback, cfg)
}

// evalRobustnessAt is EvaluateRobustness compiled at width S.
func evalRobustnessAt[S tensor.Scalar](det *Detector, d *Dataset, cfg RobustnessConfig) (*RobustnessReport, error) {
	w := cfg.Workers
	if w < 1 {
		w = 1
	}
	dets := make([]*edge.DetectorOf[S], w)
	for i := range dets {
		clf := model.Classifier(det.model)
		if nm, ok := det.model.(*model.NetModel); ok && i > 0 {
			clf = nm.Clone()
		}
		s, err := streamAt[S](det, clf)
		if err != nil {
			return nil, err
		}
		dets[i] = s
	}
	return eval.EvaluateRobustnessParallel(dets, d.Trials, cfg.Kinds, cfg.Severities, cfg.Seed), nil
}

// evalCascadeRobustnessAt is CascadeDetector.EvaluateRobustness
// compiled at width S.
func evalCascadeRobustnessAt[S tensor.Scalar](cd *CascadeDetector, d *Dataset, cfg RobustnessConfig) (*RobustnessReport, error) {
	w := cfg.Workers
	if w < 1 {
		w = 1
	}
	cs := make([]*cascade.CascadeOf[S], w)
	for i := range cs {
		primary := model.Classifier(cd.primary.model)
		fallback := model.Classifier(cd.fallback.model)
		if i > 0 {
			if nm, ok := cd.primary.model.(*model.NetModel); ok {
				primary = nm.Clone()
			}
			if nm, ok := cd.fallback.model.(*model.NetModel); ok {
				fallback = nm.Clone()
			}
		}
		c, err := cascadeStreamAt[S](cd, primary, fallback)
		if err != nil {
			return nil, err
		}
		cs[i] = c
	}
	return eval.EvaluateCascadeRobustnessParallel(cs, d.Trials, cfg.Kinds, cfg.Severities, cfg.Seed), nil
}
