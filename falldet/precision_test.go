package falldet

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"math"
	"testing"

	"repro/internal/artifact"
)

func TestPrecisionStringParse(t *testing.T) {
	for _, p := range []Precision{PrecisionF64, PrecisionF32} {
		got, err := ParsePrecision(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePrecision(%q) = %v, %v", p.String(), got, err)
		}
	}
	if got, err := ParsePrecision("float32"); err != nil || got != PrecisionF32 {
		t.Fatalf("alias float32: %v, %v", got, err)
	}
	if _, err := ParsePrecision("f16"); err == nil {
		t.Fatal("f16 accepted")
	}
}

// v1Envelope reframes an envelope's decoded parts in the pre-dtype
// version-1 layout: magic | version=1 | kind | shape | payload | digest.
func v1Envelope(kind string, shape []int, payload []byte) []byte {
	le := binary.LittleEndian
	raw := []byte(artifact.Magic)
	raw = le.AppendUint32(raw, 1)
	raw = le.AppendUint16(raw, uint16(len(kind)))
	raw = append(raw, kind...)
	raw = le.AppendUint16(raw, uint16(len(shape)))
	for _, d := range shape {
		raw = le.AppendUint32(raw, uint32(d))
	}
	raw = le.AppendUint32(raw, uint32(len(payload)))
	raw = append(raw, payload...)
	sum := sha256.Sum256(raw)
	return append(raw, sum[:]...)
}

// downgradeV1 rewrites a current envelope image in version-1 framing.
func downgradeV1(t *testing.T, img []byte) []byte {
	t.Helper()
	h, payload, err := artifact.Read(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	return v1Envelope(h.Kind, h.Shape, payload)
}

// TestPreBumpDetectorLoads proves forward compatibility at the
// deployment surface: a detector image written before the dtype field
// existed — version-1 framing on the outer envelope AND on the nested
// network envelope — still loads, as float64, with bit-identical
// scores. Sampled truncations and bit flips of the legacy image must
// still fail with a structured error, never a misdecoded detector.
func TestPreBumpDetectorLoads(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short")
	}
	d := tinyData(t)
	cfg := tinyConfig()
	cfg.Epochs = 2
	det, err := Train(d, KindMLP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Rebuild the image as a pre-bump writer would have produced it:
	// downgrade the nested network envelope inside the gob payload,
	// then the outer detector envelope.
	h, payload, err := artifact.Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var s savedDetector
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&s); err != nil {
		t.Fatal(err)
	}
	s.Net = downgradeV1(t, s.Net)
	var repacked bytes.Buffer
	if err := gob.NewEncoder(&repacked).Encode(&s); err != nil {
		t.Fatal(err)
	}
	legacy := v1Envelope(h.Kind, h.Shape, repacked.Bytes())

	loaded, err := LoadSaved(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("pre-bump image rejected: %v", err)
	}
	segs, _ := ExtractSegments(d, cfg)
	for i := 0; i < 20; i++ {
		if math.Abs(det.Score(segs[i].X)-loaded.Score(segs[i].X)) > 1e-12 {
			t.Fatal("pre-bump detector scores differ")
		}
	}

	// Chaos over the legacy image (sampled — the full product is the
	// artifact package's own exhaustive sweep).
	for n := 0; n < len(legacy); n += 37 {
		if _, err := LoadSaved(bytes.NewReader(legacy[:n])); err == nil {
			t.Fatalf("truncation to %d/%d bytes accepted", n, len(legacy))
		}
	}
	for i := 0; i < len(legacy); i += 101 {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), legacy...)
			mut[i] ^= 1 << bit
			if _, err := LoadSaved(bytes.NewReader(mut)); err == nil {
				t.Fatalf("bit flip at byte %d bit %d accepted", i, bit)
			}
		}
	}
}

// agreeTol bounds how far any aggregate decision metric may drift
// between the float32 deployment sweep and the float64 reference sweep.
// Both sweeps replay identical fault streams (same seeds), so the only
// source of divergence is a probability crossing the trigger threshold
// inside the single-precision rounding band.
const agreeTol = 0.1

func pointsAgree(t *testing.T, tag string, p64, p32 RobustnessPoint) {
	t.Helper()
	if p64.Fault != p32.Fault || p64.Severity != p32.Severity {
		t.Fatalf("%s: sweep points misaligned: f64 %s/%.2f vs f32 %s/%.2f",
			tag, p64.Fault, p64.Severity, p32.Fault, p32.Severity)
	}
	if p32.BadScores != 0 || p64.BadScores != 0 {
		t.Fatalf("%s %s/%.2f: non-finite scores (f64 %d, f32 %d)",
			tag, p64.Fault, p64.Severity, p64.BadScores, p32.BadScores)
	}
	// Health, quarantine and gap accounting run float64 at every
	// compiled width by design — they must match exactly.
	if p64.Quarantined != p32.Quarantined || p64.Missing != p32.Missing ||
		p64.Stuck != p32.Stuck || p64.Drift != p32.Drift {
		t.Fatalf("%s %s/%.2f: width-independent counters diverge:\n f64 %+v\n f32 %+v",
			tag, p64.Fault, p64.Severity, p64, p32)
	}
	if d := math.Abs(p64.Recall - p32.Recall); d > agreeTol {
		t.Fatalf("%s %s/%.2f: recall gap %.3f (f64 %.3f, f32 %.3f)",
			tag, p64.Fault, p64.Severity, d, p64.Recall, p32.Recall)
	}
	if d := math.Abs(p64.InTime - p32.InTime); d > agreeTol {
		t.Fatalf("%s %s/%.2f: in-time gap %.3f", tag, p64.Fault, p64.Severity, d)
	}
	if d := math.Abs(p64.FalseAlarmRate - p32.FalseAlarmRate); d > agreeTol {
		t.Fatalf("%s %s/%.2f: false-alarm-rate gap %.3f", tag, p64.Fault, p64.Severity, d)
	}
}

// TestPrecisionDecisionAgreement runs the full fault-type × severity
// robustness sweep twice — once per compiled width — and compares the
// reports point for point: exact equality on everything that runs
// float64 at both widths (health, quarantine, gap counters), agreement
// within agreeTol on every decision metric, zero non-finite scores at
// either width. This is the acceptance harness for the lowered
// deployment pipeline.
func TestPrecisionDecisionAgreement(t *testing.T) {
	d := tinyData(t)
	det := rawDetector(t, KindCNN, tinyConfig())
	base := RobustnessConfig{Seed: 11, Workers: 4}
	rep64, err := det.EvaluateRobustness(d, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg32 := base
	cfg32.Precision = PrecisionF32
	rep32, err := det.EvaluateRobustness(d, cfg32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep64.Points) != len(rep32.Points) || len(rep64.Points) == 0 {
		t.Fatalf("point counts differ: f64 %d, f32 %d", len(rep64.Points), len(rep32.Points))
	}
	pointsAgree(t, "clean", rep64.Clean, rep32.Clean)
	for i := range rep64.Points {
		pointsAgree(t, "fault", rep64.Points[i], rep32.Points[i])
	}
}

// TestCascadePrecisionDecisionAgreement is the supervised-cascade
// counterpart: the full sweep with tier accounting, again at both
// widths.
func TestCascadePrecisionDecisionAgreement(t *testing.T) {
	d := tinyData(t)
	cd := rawCascade(t, tinyConfig())
	base := RobustnessConfig{Seed: 11, Workers: 4}
	rep64, err := cd.EvaluateRobustness(d, base)
	if err != nil {
		t.Fatal(err)
	}
	cfg32 := base
	cfg32.Precision = PrecisionF32
	rep32, err := cd.EvaluateRobustness(d, cfg32)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep64.Points) != len(rep32.Points) || len(rep64.Points) == 0 {
		t.Fatalf("point counts differ: f64 %d, f32 %d", len(rep64.Points), len(rep32.Points))
	}
	pointsAgree(t, "cascade-clean", rep64.Clean, rep32.Clean)
	for i := range rep64.Points {
		pointsAgree(t, "cascade", rep64.Points[i], rep32.Points[i])
	}
}
