package falldet_test

import (
	"fmt"
	"log"

	"repro/falldet"
)

// ExampleSynthesize shows the two-source dataset generation with
// alignment and filtering applied.
func ExampleSynthesize() {
	data, err := falldet.Synthesize(falldet.SynthConfig{
		WorksiteSubjects: 2,
		KFallSubjects:    2,
		Tasks:            []int{6, 30}, // walk, forward trip fall
		LongTaskSeconds:  4,
		Seed:             1,
	})
	if err != nil {
		log.Fatal(err)
	}
	falls, adls := data.Counts()
	fmt.Printf("subjects=%d falls=%d adls=%d\n", len(data.Subjects()), falls, adls)
	// Output: subjects=4 falls=4 adls=4
}

// ExampleExtractSegments shows the labelled sliding-window extraction
// with the paper's 150 ms pre-impact truncation applied.
func ExampleExtractSegments() {
	data, err := falldet.Synthesize(falldet.SynthConfig{
		WorksiteSubjects: 2,
		Tasks:            []int{6, 30},
		LongTaskSeconds:  4,
		Seed:             1,
	})
	if err != nil {
		log.Fatal(err)
	}
	segs, err := falldet.ExtractSegments(data, falldet.Config{WindowMS: 400, Overlap: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	pos := 0
	for _, s := range segs {
		pos += s.Y
	}
	fmt.Printf("windows=%v positives>0=%v\n", len(segs) > 0, pos > 0)
	// Output: windows=true positives>0=true
}

// ExampleGenerateSession shows the continuous-wear stream generator.
func ExampleGenerateSession() {
	s, err := falldet.GenerateSession(7, falldet.SessionConfig{
		Minutes:  1,
		FallRate: 60,
		Tasks:    []int{6, 30},
	}, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("continuous=%v episodes>0=%v\n",
		s.DurationHours() > 0.015, len(s.Events) > 0)
	// Output: continuous=true episodes>0=true
}
