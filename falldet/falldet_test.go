package falldet

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/edge"
)

// tinyConfig keeps integration tests fast while exercising every
// pipeline stage.
func tinyConfig() Config {
	return Config{
		WindowMS:    200,
		Overlap:     0.5,
		Epochs:      5,
		Patience:    5,
		MaxTrainNeg: 500,
		Seed:        1,
	}
}

func tinyData(t *testing.T) *Dataset {
	t.Helper()
	d, err := Synthesize(SynthConfig{
		WorksiteSubjects: 4,
		KFallSubjects:    3,
		Tasks:            []int{1, 4, 6, 21, 30, 39},
		LongTaskSeconds:  5,
		Seed:             2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSynthesizeMergesSources(t *testing.T) {
	d := tinyData(t)
	subs := d.Subjects()
	if len(subs) != 7 {
		t.Fatalf("%d subjects, want 7", len(subs))
	}
	// After standardisation every trial is in the worksite convention.
	for i := range d.Trials {
		if d.Trials[i].Source != dataset.SourceWorksite {
			t.Fatal("unaligned trial survived Synthesize")
		}
	}
	// KFall flavour lacks task 39 (worksite-only).
	kfTrials := 0
	for i := range d.Trials {
		if d.Trials[i].Subject > 100 {
			kfTrials++
			if d.Trials[i].Task == 39 {
				t.Fatal("kfall subject performed a worksite-only task")
			}
		}
	}
	if kfTrials == 0 {
		t.Fatal("no kfall trials present")
	}
}

func TestSynthesizeRejectsEmpty(t *testing.T) {
	if _, err := Synthesize(SynthConfig{}); err == nil {
		t.Fatal("no subjects accepted")
	}
}

func TestTrainEvaluateStreamQuantize(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline skipped in -short")
	}
	d := tinyData(t)
	det, err := Train(d, KindCNN, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}

	segs, err := ExtractSegments(d, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := det.Evaluate(segs)
	if c.Total() != len(segs) {
		t.Fatal("evaluate count mismatch")
	}
	// In-sample accuracy must be well above the majority class floor
	// is too strict for 5 epochs; just require learning happened.
	if c.Accuracy() < 0.6 {
		t.Fatalf("accuracy %.2f", c.Accuracy())
	}

	// Streaming deployment on a fall trial.
	stream, err := det.Stream()
	if err != nil {
		t.Fatal(err)
	}
	var fallTrial *Trial
	for i := range d.Trials {
		if d.Trials[i].IsFall() {
			fallTrial = &d.Trials[i]
			break
		}
	}
	sim := stream.Simulate(fallTrial)
	_ = sim // any outcome is legal for a 5-epoch model; must not panic

	// Quantization against the paper's device.
	dep, err := det.Quantize(CalibrationWindows(segs, 30, 3), edge.STM32F722())
	if err != nil {
		t.Fatal(err)
	}
	if !dep.FitsFlash || !dep.FitsRAM {
		t.Fatalf("model does not fit the STM32F722: %+v", dep)
	}
	if dep.FlashKiB <= 0 || dep.FlashKiB > 256 {
		t.Fatalf("flash %.1f KiB", dep.FlashKiB)
	}
	if dep.InferenceTime <= 0 {
		t.Fatal("zero inference time")
	}
	// Quantized and float scores agree on most segments.
	agree := 0
	for i := range segs[:200] {
		pf := det.Score(segs[i].X)
		pq := dep.Q.Predict(segs[i].X)
		if (pf >= 0.5) == (pq >= 0.5) {
			agree++
		}
	}
	if agree < 190 {
		t.Fatalf("float/int8 agreement %d/200", agree)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short")
	}
	d := tinyData(t)
	cfg := tinyConfig()
	cfg.Epochs = 2
	det, err := Train(d, KindMLP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, KindMLP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	segs, _ := ExtractSegments(d, cfg)
	for i := 0; i < 20; i++ {
		if math.Abs(det.Score(segs[i].X)-loaded.Score(segs[i].X)) > 1e-12 {
			t.Fatal("loaded detector differs")
		}
	}
}

func TestLoadSavedNeedsNoConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("training skipped in -short")
	}
	d := tinyData(t)
	cfg := tinyConfig()
	cfg.Epochs = 2
	cfg.Threshold = 0.7
	det, err := Train(d, KindMLP, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// The image alone reconstructs kind, window and threshold.
	loaded, err := LoadSaved(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Kind() != KindMLP {
		t.Fatalf("kind %v, want %v", loaded.Kind(), KindMLP)
	}
	if loaded.cfg.WindowMS != 200 || loaded.cfg.Overlap != 0.5 || loaded.cfg.Threshold != 0.7 {
		t.Fatalf("restored config %+v", loaded.cfg)
	}
	segs, _ := ExtractSegments(d, cfg)
	for i := 0; i < 20; i++ {
		if math.Abs(det.Score(segs[i].X)-loaded.Score(segs[i].X)) > 1e-12 {
			t.Fatal("loaded detector differs")
		}
	}
	// Streaming deployment works straight off the restored config.
	if _, err := loaded.Stream(); err != nil {
		t.Fatal(err)
	}

	// Load cross-checks the caller's expectations against the image.
	if _, err := Load(bytes.NewReader(raw), KindCNN, cfg); err == nil {
		t.Fatal("MLP image loaded as CNN")
	}
	wrongWin := cfg
	wrongWin.WindowMS = 400
	if _, err := Load(bytes.NewReader(raw), KindMLP, wrongWin); err == nil {
		t.Fatal("200 ms image loaded against a 400 ms expectation")
	}
	// The streaming overlap is a runtime knob, not model geometry: a
	// denser deployment stride must load fine and win over the saved one.
	dense := cfg
	dense.Overlap = 0.75
	denseDet, err := Load(bytes.NewReader(raw), KindMLP, dense)
	if err != nil {
		t.Fatalf("overlap override rejected: %v", err)
	}
	if denseDet.cfg.Overlap != 0.75 {
		t.Fatalf("overlap %g, want caller's 0.75", denseDet.cfg.Overlap)
	}

	// Chaos: bit flips and truncations anywhere must be rejected.
	for _, i := range []int{0, 7, len(raw) / 2, len(raw) - 1} {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x20
		if _, err := LoadSaved(bytes.NewReader(mut)); err == nil {
			t.Fatalf("bit flip at %d loaded", i)
		}
	}
	if _, err := LoadSaved(bytes.NewReader(raw[:len(raw)-9])); err == nil {
		t.Fatal("truncated image loaded")
	}
}

func TestThresholdDetectorNoSaving(t *testing.T) {
	d := tinyData(t)
	cfg := tinyConfig()
	det, err := Train(d, KindThresholdAcc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.Save(&buf); err == nil {
		t.Fatal("threshold detector saved weights?")
	}
	if _, err := det.Quantize(nil, edge.STM32F722()); err == nil {
		t.Fatal("threshold detector quantized?")
	}
}

func TestCrossValidateAndEventAnalysis(t *testing.T) {
	d := tinyData(t)
	cfg := tinyConfig()
	cfg.Folds = 2
	cfg.ValSubjects = 1
	res, err := CrossValidate(d, KindThresholdAcc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := EventAnalysis(res, 0.5)
	if len(st.FallTasks) == 0 || len(st.ADLTasks) == 0 {
		t.Fatalf("event stats empty: %+v", st)
	}
	// Aggregate percentages must be in [0, 100].
	for _, v := range []float64{st.AllFallMissPct, st.AllADLFPPct, st.RedADLFPPct, st.GreenADLFPPct} {
		if v < 0 || v > 100 {
			t.Fatalf("percentage out of range: %g", v)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.WindowMS != 400 || c.Overlap != 0.5 || c.Epochs != 200 || c.Patience != 20 {
		t.Fatalf("defaults %+v", c)
	}
	if c.Folds != 5 || c.ValSubjects != 4 || c.Threshold != 0.5 || c.AugmentFactor != 2 {
		t.Fatalf("defaults %+v", c)
	}
}

func TestSessionGenerationAndEvaluation(t *testing.T) {
	s, err := GenerateSession(1, SessionConfig{Minutes: 1, FallRate: 60}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.DurationHours() <= 0 || len(s.Events) == 0 {
		t.Fatalf("degenerate session: %f h, %d events", s.DurationHours(), len(s.Events))
	}
	// Threshold-based detector: no training needed for the wiring test.
	d := tinyData(t)
	det, err := Train(d, KindThresholdAcc, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	out, err := det.EvaluateSession(s, AirbagConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Hours <= 0 {
		t.Fatal("no duration")
	}
	if out.Detected+out.FalseAlarms != len(out.Firings) {
		t.Fatal("firing attribution broken")
	}
}

func TestLoadErrors(t *testing.T) {
	cfg := tinyConfig()
	// Garbage stream.
	if _, err := Load(bytes.NewReader([]byte("junk")), KindMLP, cfg); err == nil {
		t.Fatal("garbage weights loaded")
	}
	// Threshold kinds cannot be loaded from weights.
	if _, err := Load(bytes.NewReader(nil), KindThresholdAcc, cfg); err == nil {
		t.Fatal("threshold kind loaded")
	}
}

func TestTrainErrors(t *testing.T) {
	d := tinyData(t)
	bad := tinyConfig()
	bad.WindowMS = 1
	if _, err := Train(d, KindCNN, bad); err == nil {
		t.Fatal("invalid window accepted")
	}
	few := tinyConfig()
	few.ValSubjects = 99
	if _, err := Train(d, KindCNN, few); err == nil {
		t.Fatal("validation larger than cohort accepted")
	}
}

func TestCalibrationWindowsBounds(t *testing.T) {
	d := tinyData(t)
	segs, err := ExtractSegments(d, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := CalibrationWindows(segs, 5, 1); len(got) != 5 {
		t.Fatalf("got %d windows", len(got))
	}
	if got := CalibrationWindows(segs, len(segs)+100, 1); len(got) != len(segs) {
		t.Fatal("overdraw not clamped")
	}
}

func TestConfigZeroOverlapIsHonoured(t *testing.T) {
	// Regression: an explicit window with Overlap 0 must mean a true
	// 0 % overlap, not the 0.5 default (the §III-A sweep includes 0 %).
	c := Config{WindowMS: 400}.withDefaults()
	if c.Overlap != 0 {
		t.Fatalf("explicit window turned overlap into %g", c.Overlap)
	}
	d := tinyData(t)
	segs0, err := ExtractSegments(d, Config{WindowMS: 400, Overlap: 0})
	if err != nil {
		t.Fatal(err)
	}
	segs50, err := ExtractSegments(d, Config{WindowMS: 400, Overlap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(segs0) >= len(segs50) {
		t.Fatalf("0%% overlap produced %d segments vs %d at 50%%", len(segs0), len(segs50))
	}
}
