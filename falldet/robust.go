package falldet

import (
	"repro/internal/eval"
	"repro/internal/fault"
)

// Fault-injection surface, re-exported so robustness studies can stay
// on this package.
type (
	// FaultInjector corrupts a sample stream deterministically.
	FaultInjector = fault.Injector
	// FaultKind selects one fault model for severity-swept evaluation.
	FaultKind = fault.Kind
	// RobustnessPoint is one fault condition's streaming metrics.
	RobustnessPoint = eval.RobustnessPoint
	// RobustnessReport is a fault-type × severity sweep vs clean.
	RobustnessReport = eval.RobustnessReport
)

// The fault taxonomy (see internal/fault for the physical models).
const (
	FaultDropout    = fault.KindDropout
	FaultSaturation = fault.KindSaturation
	FaultNoise      = fault.KindNoise
	FaultDrift      = fault.KindDrift
	FaultStuck      = fault.KindStuck
	FaultNaNBurst   = fault.KindNaNBurst
	FaultJitter     = fault.KindJitter
	FaultGyroNaN    = fault.KindGyroNaN
	FaultGyroStuck  = fault.KindGyroStuck
)

// FaultKinds lists the whole taxonomy in sweep order.
func FaultKinds() []FaultKind { return fault.Kinds() }

// NewFault builds an injector of the given kind at a severity in
// [0, 1]; see fault.New for the severity → physical-parameter mapping.
func NewFault(kind FaultKind, severity float64, seed int64) FaultInjector {
	return fault.New(kind, severity, seed)
}

// RobustnessConfig shapes a robustness sweep.
type RobustnessConfig struct {
	// Kinds restricts the fault taxonomy (nil = all kinds).
	Kinds []FaultKind
	// Severities are the per-kind severity levels in [0, 1]
	// (nil = {0.1, 0.25, 0.5}).
	Severities []float64
	// Seed drives the fault randomness.
	Seed int64
	// Workers fans the fault conditions out across this many streaming
	// pipelines (≤ 1 runs serially). Network models are cloned per
	// worker — the streaming pipeline and the network's activation
	// scratch are single-goroutine — so the report is identical for
	// any worker count.
	Workers int
	// Precision selects the compiled scalar width of the sweep's
	// streaming pipelines. The zero value is PrecisionF64, the
	// reference width; PrecisionF32 sweeps the lowered deployment
	// pipelines instead (the decision-agreement harness compares the
	// two reports point for point).
	Precision Precision
}

// EvaluateRobustness replays every trial of the dataset through the
// detector's streaming pipeline under each fault condition and
// reports the degradation relative to the clean baseline: recall,
// in-time rate, mean lead time and false alarms per hour of ADL
// stream. The detector's input hardening is active throughout, so a
// passing sweep also certifies zero NaN probabilities under NaN-burst
// and dropout faults.
func (det *Detector) EvaluateRobustness(d *Dataset, cfg RobustnessConfig) (*RobustnessReport, error) {
	// Worker 0 reuses the detector's own network; the others score on
	// weight-identical clones (threshold models are stateless at
	// scoring time and can be shared). See evalRobustnessAt.
	if cfg.Precision == PrecisionF32 {
		return evalRobustnessAt[float32](det, d, cfg)
	}
	return evalRobustnessAt[float64](det, d, cfg)
}
