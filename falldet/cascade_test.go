package falldet

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"testing"

	"repro/internal/artifact"
	"repro/internal/dataset"
	"repro/internal/imu"
	"repro/internal/tensor"
)

// rawDetector builds an untrained detector of the given kind — random
// weights score deterministically, which is all the wiring tests need.
func rawDetector(t *testing.T, kind Kind, cfg Config) *Detector {
	t.Helper()
	cfg = cfg.withDefaults()
	win := cfg.WindowMS * dataset.SampleRate / 1000
	m, err := buildModel(kind, win, 0, 0, rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		t.Fatal(err)
	}
	return &Detector{cfg: cfg, kind: kind, model: m}
}

func rawCascade(t *testing.T, cfg Config) *CascadeDetector {
	t.Helper()
	cd, err := NewCascadeDetector(rawDetector(t, KindCNN, cfg), rawDetector(t, KindCNNAccel, cfg))
	if err != nil {
		t.Fatal(err)
	}
	return cd
}

func TestNewCascadeDetectorValidation(t *testing.T) {
	cfg := tinyConfig()
	primary := rawDetector(t, KindCNN, cfg)
	fallback := rawDetector(t, KindCNNAccel, cfg)
	if _, err := NewCascadeDetector(nil, fallback); err == nil {
		t.Fatal("nil primary accepted")
	}
	if _, err := NewCascadeDetector(primary, nil); err == nil {
		t.Fatal("nil fallback accepted")
	}
	// A gyro-reading model is not a valid tier 1: it would go blind
	// with the exact fault the tier exists to survive.
	if _, err := NewCascadeDetector(primary, rawDetector(t, KindCNN, cfg)); err == nil {
		t.Fatal("full-input fallback accepted")
	}
	wide := cfg
	wide.WindowMS = 400
	if _, err := NewCascadeDetector(primary, rawDetector(t, KindCNNAccel, wide)); err == nil {
		t.Fatal("window mismatch accepted")
	}
}

func TestCascadeStreamDecidesThroughGyroDeath(t *testing.T) {
	cd := rawCascade(t, tinyConfig())
	c, err := cd.Stream()
	if err != nil {
		t.Fatal(err)
	}
	if c.MinTier() != TierPrimary {
		t.Fatalf("tiny CNN over budget: MinTier %v", c.MinTier())
	}
	for i := 0; i < 3*c.Window(); i++ {
		ph := float64(i) * 0.1
		c.Push(imu.Vec3{X: 0.05 * math.Sin(ph), Z: 1}, imu.Vec3{Y: 5 * math.Cos(ph)})
	}
	if c.SupervisorTier() != TierPrimary {
		t.Fatalf("healthy stream at tier %v", c.SupervisorTier())
	}
	nan := math.NaN()
	sawFallback := false
	for i := 0; i < 3*c.Window(); i++ {
		d := c.Push(imu.Vec3{Z: 1 + 0.01*math.Sin(float64(i))}, imu.Vec3{X: nan})
		if d.Evaluated && d.Tier == TierFallback {
			sawFallback = true
		}
	}
	if !sawFallback {
		t.Fatal("fallback never decided under a dead gyro")
	}
}

func TestCascadeSaveLoadRoundTrip(t *testing.T) {
	cd := rawCascade(t, tinyConfig())
	var buf bytes.Buffer
	if err := cd.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	loaded, err := LoadCascade(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Primary().Kind() != KindCNN || loaded.Fallback().Kind() != KindCNNAccel {
		t.Fatalf("kinds %v/%v", loaded.Primary().Kind(), loaded.Fallback().Kind())
	}
	// Both members score bit-identically after the round trip.
	rng := rand.New(rand.NewSource(3))
	win := tinyConfig().WindowMS * dataset.SampleRate / 1000
	for trial := 0; trial < 5; trial++ {
		x := tensor.New(win, imu.NumChannels)
		data := x.Data()
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		if got, want := loaded.Primary().Score(x), cd.Primary().Score(x); got != want {
			t.Fatalf("primary score %g != %g", got, want)
		}
		if got, want := loaded.Fallback().Score(x), cd.Fallback().Score(x); got != want {
			t.Fatalf("fallback score %g != %g", got, want)
		}
	}
	// The loaded cascade streams without re-supplied configuration.
	if _, err := loaded.Stream(); err != nil {
		t.Fatal(err)
	}
}

// TestCascadeLoadRejectsCorruption is the acceptance chaos test:
// truncation or a bit flip anywhere in the bundle — either member's
// weights included — must fail the load.
func TestCascadeLoadRejectsCorruption(t *testing.T) {
	cfg := tinyConfig()
	cfg.WindowMS = 100 // smallest geometry: keeps the image small enough to sweep
	cd := rawCascade(t, cfg)
	var buf bytes.Buffer
	if err := cd.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, n := range []int{0, 1, 8, len(raw) / 4, len(raw) / 2, len(raw) - 1} {
		if _, err := LoadCascade(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncation to %d/%d bytes loaded", n, len(raw))
		}
	}
	// Flip one bit at a spread of offsets covering the outer header,
	// the primary's weights and the fallback's weights.
	for off := 0; off < len(raw); off += 97 {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x10
		if _, err := LoadCascade(bytes.NewReader(mut)); err == nil {
			t.Fatalf("bit flip at byte %d loaded", off)
		}
	}
}

// TestCascadeLoadRejectsMiswiredBundle: a bundle whose entries are
// swapped holds a full-input model under the "fallback" name — the
// pair re-validation must refuse it.
func TestCascadeLoadRejectsMiswiredBundle(t *testing.T) {
	cd := rawCascade(t, tinyConfig())
	var primary, fallback bytes.Buffer
	if err := cd.Primary().Save(&primary); err != nil {
		t.Fatal(err)
	}
	if err := cd.Fallback().Save(&fallback); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	err := writeSwappedBundle(&buf, primary.Bytes(), fallback.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCascade(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("swapped bundle loaded")
	}
}

func writeSwappedBundle(w io.Writer, primaryImg, fallbackImg []byte) error {
	return artifact.WriteBundle(w, map[string][]byte{
		bundlePrimaryEntry:  fallbackImg,
		bundleFallbackEntry: primaryImg,
	})
}

func TestCascadeRobustnessTierAccounting(t *testing.T) {
	d := tinyData(t)
	// Untrained members keep this a wiring test: one blinding fault,
	// one severity, two workers.
	cd := rawCascade(t, tinyConfig())
	rep, err := cd.EvaluateRobustness(d, RobustnessConfig{
		Kinds:      []FaultKind{FaultGyroNaN},
		Severities: []float64{0.5},
		Seed:       4,
		Workers:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 1 {
		t.Fatalf("%d points", len(rep.Points))
	}
	p := rep.Points[0]
	if p.TierEvals[TierFallback]+p.TierEvals[TierThreshold] == 0 {
		t.Fatal("gyro death produced no degraded-tier decisions")
	}
	if p.BadScores != 0 {
		t.Fatalf("%d bad scores", p.BadScores)
	}
}
