package falldet

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/artifact"
	"repro/internal/dataset"
	"repro/internal/edge"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/synth"
	"repro/internal/tensor"
)

// Detector is a trained pre-impact fall detector ready for
// evaluation, quantization or streaming deployment.
type Detector struct {
	cfg   Config
	kind  Kind
	model model.Trainable
}

// Train fits a detector of the given family on the whole dataset,
// holding out ValSubjects subjects for early stopping. Use
// CrossValidate for unbiased metrics; Train is for producing the
// deployable artefact.
func Train(d *Dataset, kind Kind, cfg Config) (*Detector, error) {
	cfg = cfg.withDefaults()
	segCfg := dataset.SegmentConfig{WindowMS: cfg.WindowMS, Overlap: cfg.Overlap}
	if err := segCfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	subjects := d.Subjects()
	if len(subjects) <= cfg.ValSubjects {
		return nil, fmt.Errorf("falldet: %d subjects cannot spare %d for validation",
			len(subjects), cfg.ValSubjects)
	}
	rng.Shuffle(len(subjects), func(i, j int) { subjects[i], subjects[j] = subjects[j], subjects[i] })
	valSet := map[int]bool{}
	for _, s := range subjects[:cfg.ValSubjects] {
		valSet[s] = true
	}

	segs, err := d.ExtractAll(segCfg)
	if err != nil {
		return nil, err
	}
	var train, val []nn.Example
	pos := 0
	for i := range segs {
		e := nn.Example{X: segs[i].X, Y: segs[i].Y}
		if valSet[segs[i].Subject] {
			val = append(val, e)
		} else {
			train = append(train, e)
			pos += e.Y
		}
	}
	if len(train) == 0 {
		return nil, fmt.Errorf("falldet: no training segments")
	}

	m, err := buildModel(kind, segCfg.WindowSamples(), pos, len(train), rng)
	if err != nil {
		return nil, err
	}
	tc := nn.TrainConfig{Epochs: cfg.Epochs, Patience: cfg.Patience, BatchSize: 32, Log: cfg.Log,
		Workers: cfg.Workers}
	if err := m.Fit(train, val, tc, rng); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg, kind: kind, model: m}, nil
}

func buildModel(kind Kind, winSamples, pos, total int, rng *rand.Rand) (model.Trainable, error) {
	if kind == KindThresholdAcc || kind == KindThresholdGyro {
		return model.NewThreshold(kind)
	}
	return model.New(kind, model.Config{
		WindowSamples: winSamples,
		PosCount:      pos,
		TotalCount:    total,
	}, rng)
}

// Kind returns the detector's model family.
func (det *Detector) Kind() Kind { return det.kind }

// Score classifies one [T × 9] window.
func (det *Detector) Score(x *tensor.Tensor) float64 { return det.model.Score(x) }

// Evaluate scores a labelled segment set.
func (det *Detector) Evaluate(segs []Segment) nn.Confusion {
	var c nn.Confusion
	for i := range segs {
		c.AddThreshold(det.model.Score(segs[i].X), segs[i].Y, det.cfg.Threshold)
	}
	return c
}

// Stream wraps the detector in the real-time on-device pipeline.
func (det *Detector) Stream() (*StreamDetector, error) {
	return det.streamWith(det.model)
}

// streamWith builds the streaming pipeline around an explicit
// classifier — the hook that lets a parallel robustness sweep give
// each worker its own pipeline over a cloned model.
func (det *Detector) streamWith(clf model.Classifier) (*StreamDetector, error) {
	// det.cfg went through withDefaults, so Threshold is the resolved
	// value and a literal 0 is intentional — streamAt spells it in the
	// sentinel form edge expects (its own zero value means "unset").
	return streamAt[float64](det, clf)
}

// Deployment is the §IV-C on-edge report for a quantized detector.
type Deployment struct {
	Q *quant.QNetwork
	// FlashKiB and RAMKiB are the quantized footprints.
	FlashKiB, RAMKiB float64
	// InferenceTime and FusionTime are per-segment costs on Target.
	InferenceTime time.Duration
	FusionTime    time.Duration
	// FitsFlash / FitsRAM report against the target's budget.
	FitsFlash, FitsRAM bool
	Target             Device
}

// Quantize converts the detector's network to int8 using the given
// calibration windows and sizes it against the target device. Only
// the deployable families (CNN, MLP) are supported, matching the
// paper's deployment.
func (det *Detector) Quantize(calibration []*tensor.Tensor, target Device) (*Deployment, error) {
	nm, ok := det.model.(*model.NetModel)
	if !ok {
		return nil, fmt.Errorf("falldet: %s is not a quantizable network model", det.model.Name())
	}
	cal, err := quant.Calibrate(nm.Net, calibration)
	if err != nil {
		return nil, err
	}
	winSamples := det.cfg.WindowMS * dataset.SampleRate / 1000
	qn, err := quant.Build(nm.Net, cal, []int{winSamples, 9})
	if err != nil {
		return nil, err
	}
	cost, err := edge.ModelCost(nm.Net, []int{winSamples, 9})
	if err != nil {
		return nil, err
	}
	return &Deployment{
		Q:             qn,
		FlashKiB:      float64(qn.FlashBytes()) / 1024,
		RAMKiB:        float64(qn.RAMBytes()) / 1024,
		InferenceTime: target.InferenceTime(cost),
		FusionTime:    target.FusionTime(winSamples),
		FitsFlash:     target.FitsFlash(qn.FlashBytes()),
		FitsRAM:       target.FitsRAM(qn.RAMBytes()),
		Target:        target,
	}, nil
}

// DetectorArtifactKind tags saved detectors in the verified artifact
// envelope (see internal/artifact): magic, format version, kind string,
// input shape and a SHA-256 digest over the whole image.
const DetectorArtifactKind = "falldet-detector"

// savedDetector is the gob payload inside the envelope: the model
// family and streaming configuration ride alongside the network image,
// so a loaded detector reconstructs the exact deployment — window,
// overlap, decision threshold — without the caller re-supplying them.
type savedDetector struct {
	Kind      int
	WindowMS  int
	Overlap   float64
	Threshold float64
	Net       []byte
}

func (s *savedDetector) validate() error {
	if s.Kind < 0 || s.Kind > int(KindCNNAccel) {
		return fmt.Errorf("falldet: saved detector has unknown model kind %d", s.Kind)
	}
	if s.WindowMS <= 0 || s.WindowMS > 60_000 {
		return fmt.Errorf("falldet: saved window of %d ms outside (0, 60000]", s.WindowMS)
	}
	if s.Overlap != s.Overlap || s.Overlap < 0 || s.Overlap >= 1 {
		return fmt.Errorf("falldet: saved overlap %g outside [0, 1)", s.Overlap)
	}
	if s.Threshold != s.Threshold || s.Threshold < 0 || s.Threshold > 1 {
		return fmt.Errorf("falldet: saved threshold %g outside [0, 1]", s.Threshold)
	}
	if len(s.Net) == 0 {
		return fmt.Errorf("falldet: saved detector has no network image")
	}
	return nil
}

// Save serialises a network-backed detector — weights plus the model
// family and streaming configuration — as a verified artifact. The
// image round-trips through LoadSaved with no out-of-band knowledge.
func (det *Detector) Save(w io.Writer) error {
	nm, ok := det.model.(*model.NetModel)
	if !ok {
		return fmt.Errorf("falldet: %s has no weights to save", det.model.Name())
	}
	var net bytes.Buffer
	if err := nm.Net.Save(&net); err != nil {
		return err
	}
	s := savedDetector{
		Kind:      int(det.kind),
		WindowMS:  det.cfg.WindowMS,
		Overlap:   det.cfg.Overlap,
		Threshold: det.cfg.Threshold,
		Net:       net.Bytes(),
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&s); err != nil {
		return fmt.Errorf("falldet: encoding detector: %w", err)
	}
	winSamples := det.cfg.WindowMS * dataset.SampleRate / 1000
	return artifact.Write(w, DetectorArtifactKind, []int{winSamples, 9}, payload.Bytes())
}

// LoadSaved restores a detector from a Save image. The envelope's
// digest, version and kind are verified before the payload is decoded,
// and the recorded configuration is bounds-checked, so a corrupt or
// mislabelled image yields an error, never a misconfigured detector.
func LoadSaved(r io.Reader) (*Detector, error) {
	h, payload, err := artifact.Read(r)
	if err != nil {
		return nil, fmt.Errorf("falldet: %w", err)
	}
	if err := artifact.CheckKind(h, DetectorArtifactKind); err != nil {
		return nil, fmt.Errorf("falldet: %w", err)
	}
	var s savedDetector
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&s); err != nil {
		return nil, fmt.Errorf("falldet: decoding detector: %w", err)
	}
	if err := s.validate(); err != nil {
		return nil, err
	}
	winSamples := s.WindowMS * dataset.SampleRate / 1000
	if len(h.Shape) != 2 || h.Shape[0] != winSamples || h.Shape[1] != 9 {
		return nil, fmt.Errorf("falldet: envelope shape %v disagrees with a %d ms window", h.Shape, s.WindowMS)
	}
	cfg := Config{WindowMS: s.WindowMS, Overlap: s.Overlap}.withDefaults()
	cfg.Threshold = s.Threshold
	rng := rand.New(rand.NewSource(cfg.Seed))
	m, err := buildModel(Kind(s.Kind), winSamples, 0, 0, rng)
	if err != nil {
		return nil, err
	}
	nm, ok := m.(*model.NetModel)
	if !ok {
		return nil, fmt.Errorf("falldet: %v cannot be loaded from weights", Kind(s.Kind))
	}
	if err := nm.Net.Load(bytes.NewReader(s.Net)); err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg, kind: Kind(s.Kind), model: m}, nil
}

// Load restores a detector and validates it against the caller's
// expectations: the saved model family must be kind, and the saved
// window length — the one geometry the network's input shape is baked
// around — must match cfg (after defaulting). Runtime knobs the image
// does not constrain are taken from cfg: the streaming overlap (a
// deployment density choice, not model geometry) and, when
// cfg.Threshold is non-zero, the decision threshold; pass
// cfg.Threshold == 0 to keep the saved threshold.
func Load(r io.Reader, kind Kind, cfg Config) (*Detector, error) {
	det, err := LoadSaved(r)
	if err != nil {
		return nil, err
	}
	if det.kind != kind {
		return nil, fmt.Errorf("falldet: image holds a %v, caller expected %v", det.kind, kind)
	}
	want := cfg.withDefaults()
	if want.WindowMS != det.cfg.WindowMS {
		return nil, fmt.Errorf("falldet: image trained on %d ms windows, caller expected %d ms",
			det.cfg.WindowMS, want.WindowMS)
	}
	if cfg.Threshold != 0 {
		det.cfg.Threshold = want.Threshold
	}
	det.cfg.Overlap = want.Overlap
	det.cfg.Epochs, det.cfg.Patience = want.Epochs, want.Patience
	det.cfg.Seed, det.cfg.Log = want.Seed, want.Log
	return det, nil
}

// Session re-exports the continuous-wear stream type.
type Session = synth.Session

// SessionConfig re-exports its configuration.
type SessionConfig = synth.SessionConfig

// SessionOutcome re-exports the continuous-wear evaluation summary.
type SessionOutcome = eval.SessionOutcome

// AirbagConfig re-exports the firing-policy configuration.
type AirbagConfig = edge.AirbagConfig

// GenerateSession synthesises one continuous session for subject id
// (drawn from the worksite cohort statistics).
func GenerateSession(subjectID int, cfg SessionConfig, seed int64) (*Session, error) {
	rng := rand.New(rand.NewSource(seed))
	subj := synth.NewSubject(subjectID, rng)
	return synth.GenerateSession(subj, cfg, rng)
}

// EvaluateSession replays a session through the detector's streaming
// pipeline under the given airbag firing policy, producing the
// deployment metrics (false activations per hour, lead times).
func (det *Detector) EvaluateSession(s *Session, bag AirbagConfig) (SessionOutcome, error) {
	stream, err := det.Stream()
	if err != nil {
		return SessionOutcome{}, err
	}
	return eval.EvaluateSession(stream, edge.NewAirbag(bag), s), nil
}

// ExtractSegments exposes the labelled segmentation used everywhere.
func ExtractSegments(d *Dataset, cfg Config) ([]Segment, error) {
	cfg = cfg.withDefaults()
	return d.ExtractAll(dataset.SegmentConfig{WindowMS: cfg.WindowMS, Overlap: cfg.Overlap})
}

// CalibrationWindows pulls n segment tensors for quantization
// calibration, deterministically.
func CalibrationWindows(segs []Segment, n int, seed int64) []*tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	ix := rng.Perm(len(segs))
	if n > len(ix) {
		n = len(ix)
	}
	out := make([]*tensor.Tensor, 0, n)
	for _, i := range ix[:n] {
		out = append(out, segs[i].X)
	}
	return out
}
