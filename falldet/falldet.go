// Package falldet is the public face of the pre-impact fall-detection
// library: synthesize (or load) an IMU fall dataset, train the
// paper's lightweight three-branch CNN or any baseline, evaluate it
// with subject-independent cross-validation, quantize it to int8 and
// deploy it against the STM32F722 device model as a real-time
// streaming detector that triggers a wearable airbag at least 150 ms
// before impact.
//
// A minimal session:
//
//	data, _ := falldet.Synthesize(falldet.SynthConfig{WorksiteSubjects: 8, KFallSubjects: 8, Seed: 1})
//	det, _ := falldet.Train(data, falldet.KindCNN, falldet.Config{WindowMS: 400, Overlap: 0.5, Seed: 1})
//	stream, _ := det.Stream()
//	for _, s := range trial.Samples {
//		if r := stream.Push(s.Acc, s.Gyro); r.Triggered {
//			// fire the airbag
//		}
//	}
package falldet

import (
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/edge"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/synth"
)

// Re-exported types so downstream code can stay on this package for
// the common path.
type (
	// Dataset is a collection of annotated IMU trials.
	Dataset = dataset.Dataset
	// Trial is one activity execution with fall annotations.
	Trial = dataset.Trial
	// Segment is one labelled fixed-size window.
	Segment = dataset.Segment
	// Kind selects a model family.
	Kind = model.Kind
	// Result is a cross-validation outcome.
	Result = eval.Result
	// EventStats is the event-level (Table IV) analysis.
	EventStats = eval.EventStats
	// StreamDetector is the real-time on-device pipeline.
	StreamDetector = edge.Detector
	// StreamResult is one streaming push outcome.
	StreamResult = edge.Result
	// TrialSim is a full-trial airbag simulation outcome.
	TrialSim = edge.TrialSim
	// Device is a deployment target's budget and cost model.
	Device = edge.Device
)

// Decision-threshold sentinels, mirroring package edge: a Config zero
// value means "unset" and picks DefaultThreshold, so an explicit
// threshold of 0 is spelled ThresholdAlways (any negative value).
const (
	DefaultThreshold = edge.DefaultThreshold
	ThresholdAlways  = edge.ThresholdAlways
)

// Model family selectors.
const (
	KindCNN           = model.KindCNN
	KindMLP           = model.KindMLP
	KindLSTM          = model.KindLSTM
	KindConvLSTM      = model.KindConvLSTM
	KindThresholdAcc  = model.KindThresholdAcc
	KindThresholdGyro = model.KindThresholdGyro
	KindCNNBiGRU      = model.KindCNNBiGRU
	KindDistilled     = model.KindDistilled
	KindCNNAccel      = model.KindCNNAccel
)

// SynthConfig sizes the synthetic two-source dataset.
type SynthConfig struct {
	// WorksiteSubjects and KFallSubjects count participants per source
	// (paper: 29 and 32).
	WorksiteSubjects, KFallSubjects int
	// TrialsPerTask repeats each Table II task (default 1).
	TrialsPerTask int
	// Tasks optionally restricts the Table II task ids.
	Tasks []int
	// LongTaskSeconds shortens the paper's 30 s static holds
	// (default 8).
	LongTaskSeconds float64
	// Seed makes the dataset reproducible.
	Seed int64
}

// Synthesize generates both dataset flavours, aligns them (Rodrigues
// re-orientation + unit standardisation + on-edge sensor fusion) and
// applies the paper's 4th-order 5 Hz Butterworth pre-filter.
func Synthesize(cfg SynthConfig) (*Dataset, error) {
	if cfg.WorksiteSubjects <= 0 && cfg.KFallSubjects <= 0 {
		return nil, fmt.Errorf("falldet: no subjects requested")
	}
	opt := synth.Options{
		TrialsPerTask:   cfg.TrialsPerTask,
		LongTaskSeconds: cfg.LongTaskSeconds,
		Tasks:           cfg.Tasks,
	}
	d := &dataset.Dataset{}
	if cfg.WorksiteSubjects > 0 {
		ws, err := synth.GenerateWorksite(cfg.WorksiteSubjects, opt, cfg.Seed)
		if err != nil {
			return nil, err
		}
		d.Merge(ws)
	}
	if cfg.KFallSubjects > 0 {
		kf, err := synth.GenerateKFall(cfg.KFallSubjects, opt, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		d.Merge(kf)
	}
	d.StandardizeAll()
	d.LowPass()
	return d, nil
}

// Config holds the user-facing training knobs; zero values select the
// paper's settings scaled for a workstation run.
type Config struct {
	// WindowMS and Overlap control segmentation (paper's best:
	// 400 ms, 50 %).
	WindowMS int
	Overlap  float64
	// Epochs and Patience mirror §III-C (defaults 200 / 20).
	Epochs, Patience int
	// AugmentFactor warps each positive training segment this many
	// times (default 2: one time warp + one window warp).
	AugmentFactor int
	// MaxTrainNeg caps negative training segments (0 = use all).
	MaxTrainNeg int
	// Folds and ValSubjects configure cross-validation (defaults 5/4).
	Folds, ValSubjects int
	// Threshold is the trigger probability. The zero value selects the
	// default (0.5); negative values (see ThresholdAlways) select an
	// explicit threshold of 0, i.e. trigger on every evaluated window.
	Threshold float64
	// NoThresholdTuning disables the per-fold validation-set tuning
	// of the decision threshold. Tuning is on by default: the paper
	// configures its model "to minimize false positives" rather than
	// cutting at the raw 0.5.
	NoThresholdTuning bool
	// Seed drives all randomness.
	Seed int64
	// Log receives progress lines when non-nil.
	Log io.Writer
	// Workers is the parallelism degree: cross-validation folds fan
	// out across this many goroutines and each fold's trainer shards
	// its mini-batches across as many network replicas. Results are
	// bit-identical for any value (see DESIGN.md §8); ≤ 1 runs
	// serially.
	Workers int

	// Ablation switches: disable the paper's class-imbalance
	// countermeasures individually (experiment E9).
	NoClassWeights bool
	NoBiasInit     bool
	NoAugment      bool
}

func (c Config) withDefaults() Config {
	if c.WindowMS == 0 {
		c.WindowMS = 400
		// Only default the overlap alongside the window: an explicit
		// WindowMS with Overlap 0 means a genuine 0 % overlap (the
		// paper's sweep includes that point).
		if c.Overlap == 0 {
			c.Overlap = 0.5
		}
	}
	if c.Epochs == 0 {
		c.Epochs = 200
	}
	if c.Patience == 0 {
		c.Patience = 20
	}
	if c.AugmentFactor == 0 {
		c.AugmentFactor = 2
	}
	if c.Folds == 0 {
		c.Folds = 5
	}
	if c.ValSubjects == 0 {
		c.ValSubjects = 4
	}
	switch {
	case c.Threshold == 0:
		c.Threshold = DefaultThreshold
	case c.Threshold < 0:
		c.Threshold = 0
	}
	return c
}

func (c Config) pipeline() eval.PipelineConfig {
	return eval.PipelineConfig{
		Segment:       dataset.SegmentConfig{WindowMS: c.WindowMS, Overlap: c.Overlap},
		K:             c.Folds,
		NVal:          c.ValSubjects,
		AugmentFactor: c.AugmentFactor,
		MaxTrainNeg:   c.MaxTrainNeg,
		Train: nn.TrainConfig{
			Epochs:    c.Epochs,
			Patience:  c.Patience,
			BatchSize: 32,
			Workers:   c.Workers,
		},
		Threshold:           c.Threshold,
		TuneThreshold:       !c.NoThresholdTuning,
		Seed:                c.Seed,
		Log:                 c.Log,
		Workers:             c.Workers,
		DisableClassWeights: c.NoClassWeights,
		DisableBiasInit:     c.NoBiasInit,
		DisableAugment:      c.NoAugment,
	}
}

// CrossValidate runs the paper's subject-independent k-fold protocol
// for one model family and returns segment-level results (Table III
// row) with per-segment scores retained for event-level analysis.
func CrossValidate(d *Dataset, kind Kind, cfg Config) (*Result, error) {
	return eval.RunKFold(d, kind, cfg.withDefaults().pipeline())
}

// EventAnalysis derives the Table IV event-level statistics from a
// cross-validation result. The threshold follows the Config sentinel
// convention: 0 selects DefaultThreshold, negative selects a literal 0.
func EventAnalysis(res *Result, threshold float64) EventStats {
	switch {
	case threshold == 0:
		threshold = DefaultThreshold
	case threshold < 0:
		threshold = 0
	}
	return eval.EventAnalysis(res.AllScored(), threshold)
}
