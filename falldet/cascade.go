package falldet

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/artifact"
	"repro/internal/cascade"
	"repro/internal/edge"
	"repro/internal/model"
)

// Cascade surface, re-exported so degradation-aware deployments can
// stay on this package.
type (
	// Tier identifies one cascade level; lower is more capable.
	Tier = cascade.Tier
	// CascadeDecision is one StreamCascade.Push outcome.
	CascadeDecision = cascade.Decision
	// CascadeSim is a full-trial cascade simulation outcome.
	CascadeSim = cascade.TrialSim
	// StreamCascade is the real-time supervised three-tier pipeline.
	StreamCascade = cascade.Cascade
	// GroupHealth is the per-channel-group health breakdown the
	// cascade supervisor steers by.
	GroupHealth = edge.GroupHealth
)

// The cascade tiers, most to least capable.
const (
	TierPrimary   = cascade.TierPrimary
	TierFallback  = cascade.TierFallback
	TierThreshold = cascade.TierThreshold
	NumTiers      = cascade.NumTiers
)

// CascadeDetector pairs a trained primary detector with a trained
// accelerometer-only fallback sharing the same streaming geometry. It
// is the trainable/serialisable artefact; Stream instantiates the
// real-time supervised pipeline around it.
type CascadeDetector struct {
	primary  *Detector
	fallback *Detector
}

// NewCascadeDetector pairs two trained detectors into a cascade. The
// fallback must read only the accelerometer columns (KindCNNAccel) —
// that blindness to the gyro is what makes it a valid tier 1 — and
// both must share the window geometry, since they score the same ring.
func NewCascadeDetector(primary, fallback *Detector) (*CascadeDetector, error) {
	if primary == nil || fallback == nil {
		return nil, fmt.Errorf("falldet: cascade needs both a primary and a fallback detector")
	}
	if fallback.kind != KindCNNAccel {
		return nil, fmt.Errorf("falldet: cascade fallback is a %v, want %v", fallback.kind, KindCNNAccel)
	}
	if primary.cfg.WindowMS != fallback.cfg.WindowMS || primary.cfg.Overlap != fallback.cfg.Overlap {
		return nil, fmt.Errorf("falldet: cascade geometry mismatch: primary %d ms/%.2f, fallback %d ms/%.2f",
			primary.cfg.WindowMS, primary.cfg.Overlap, fallback.cfg.WindowMS, fallback.cfg.Overlap)
	}
	return &CascadeDetector{primary: primary, fallback: fallback}, nil
}

// TrainCascade fits both cascade members on the same dataset with the
// same configuration: the primary as the given kind (typically
// KindCNN) and the fallback as the accelerometer-only KindCNNAccel.
// The fallback trains on the full dataset too — its branch simply
// never reads the gyro or Euler columns, so it learns exactly the
// signal it will still have when those channels die.
func TrainCascade(d *Dataset, kind Kind, cfg Config) (*CascadeDetector, error) {
	primary, err := Train(d, kind, cfg)
	if err != nil {
		return nil, err
	}
	fallback, err := Train(d, KindCNNAccel, cfg)
	if err != nil {
		return nil, err
	}
	return NewCascadeDetector(primary, fallback)
}

// Primary exposes the tier-0 detector.
func (cd *CascadeDetector) Primary() *Detector { return cd.primary }

// Fallback exposes the tier-1 detector.
func (cd *CascadeDetector) Fallback() *Detector { return cd.fallback }

// Stream instantiates the supervised real-time pipeline: tier 0 the
// primary, tier 1 the fallback, tier 2 the built-in threshold floor.
// Both models' inference costs are sized against the deployment device
// so the supervisor's cycle budget is enforced from construction.
func (cd *CascadeDetector) Stream() (*StreamCascade, error) {
	return cd.streamWith(cd.primary.model, cd.fallback.model)
}

// streamWith builds the cascade around explicit classifiers — the
// hook that gives each robustness-sweep worker its own pipeline over
// cloned models.
func (cd *CascadeDetector) streamWith(primary, fallback model.Classifier) (*StreamCascade, error) {
	return cascadeStreamAt[float64](cd, primary, fallback)
}

// EvaluateRobustness is the cascade counterpart of
// Detector.EvaluateRobustness: the same fault-type × severity sweep
// over the same trials and injector seeding, but with the supervised
// cascade deciding. Comparing the two reports point for point shows
// what the cascade buys under each fault — the per-point TierEvals and
// TierTriggers show which tier did the work.
func (cd *CascadeDetector) EvaluateRobustness(d *Dataset, cfg RobustnessConfig) (*RobustnessReport, error) {
	// Worker 0 reuses the detectors' own networks; the others score on
	// weight-identical clones (the streaming pipeline and the
	// activation scratch are single-goroutine). See
	// evalCascadeRobustnessAt.
	if cfg.Precision == PrecisionF32 {
		return evalCascadeRobustnessAt[float32](cd, d, cfg)
	}
	return evalCascadeRobustnessAt[float64](cd, d, cfg)
}

// Bundle entry names: each entry is a complete falldet-detector
// envelope with its own SHA-256 digest.
const (
	bundlePrimaryEntry  = "primary"
	bundleFallbackEntry = "fallback"
)

// Save serialises both cascade members as one verified bundle: an
// outer artifact envelope whose digest covers the whole file, holding
// one complete detector envelope per member, each with its own
// SHA-256. Truncation or a single flipped bit anywhere — either
// model's weights included — fails the load.
func (cd *CascadeDetector) Save(w io.Writer) error {
	var primary, fallback bytes.Buffer
	if err := cd.primary.Save(&primary); err != nil {
		return fmt.Errorf("falldet: saving cascade primary: %w", err)
	}
	if err := cd.fallback.Save(&fallback); err != nil {
		return fmt.Errorf("falldet: saving cascade fallback: %w", err)
	}
	return artifact.WriteBundle(w, map[string][]byte{
		bundlePrimaryEntry:  primary.Bytes(),
		bundleFallbackEntry: fallback.Bytes(),
	})
}

// LoadCascade restores a cascade from a Save image. Both members'
// envelopes are digest-verified, decoded and bounds-checked, and the
// pair is re-validated (fallback kind, shared geometry) exactly as at
// construction — a corrupt or mismatched bundle yields an error, never
// a miswired cascade.
func LoadCascade(r io.Reader) (*CascadeDetector, error) {
	entries, err := artifact.ReadBundle(r)
	if err != nil {
		return nil, fmt.Errorf("falldet: %w", err)
	}
	img, ok := entries[bundlePrimaryEntry]
	if !ok {
		return nil, fmt.Errorf("falldet: bundle has no %q entry", bundlePrimaryEntry)
	}
	primary, err := LoadSaved(bytes.NewReader(img))
	if err != nil {
		return nil, fmt.Errorf("falldet: bundle primary: %w", err)
	}
	img, ok = entries[bundleFallbackEntry]
	if !ok {
		return nil, fmt.Errorf("falldet: bundle has no %q entry", bundleFallbackEntry)
	}
	fallback, err := LoadSaved(bytes.NewReader(img))
	if err != nil {
		return nil, fmt.Errorf("falldet: bundle fallback: %w", err)
	}
	return NewCascadeDetector(primary, fallback)
}
