// Package repro is the root of the reproduction of "A Lightweight CNN
// for Real-Time Pre-Impact Fall Detection" (DATE 2025). The public
// API lives in repro/falldet; the substrates live under
// repro/internal/…; bench_test.go in this package hosts the
// per-table/figure benchmark harness (see DESIGN.md for the
// experiment index and EXPERIMENTS.md for measured results).
package repro
