package repro

// Benchmark harness: one benchmark (or benchmark group) per paper
// table/figure, measuring the computational kernel that regenerates
// it. The full row-by-row reproductions are printed by
// cmd/fallbench -exp <id>; these benches quantify their cost and
// guard against performance regressions in the hot paths.
//
//	E1 (Table III)  Benchmark_Table3_*
//	E2/E3 (Table IV) Benchmark_Table4_EventAnalysis
//	E4 (§IV-C)      Benchmark_Edge_*
//	E5 (Fig. 1)     Benchmark_Fig1_TrialSynthesis
//	E6 (Fig. 2)     Benchmark_Pipeline_EndToEnd
//	E7 (§III-A)     Benchmark_Sweep_Segmentation
//	E8 (Table I)    Benchmark_Table1_ThresholdScore
//	E9 (ablation)   Benchmark_Ablation_Augment

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/falldet"
	"repro/internal/augment"
	"repro/internal/cascade"
	"repro/internal/dataset"
	"repro/internal/dsp"
	"repro/internal/edge"
	"repro/internal/eval"
	"repro/internal/imu"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/serve"
	"repro/internal/synth"
	"repro/internal/tensor"
)

// Shared fixtures, built once.
var (
	fixOnce sync.Once
	fixData *dataset.Dataset
	fixSegs []dataset.Segment
)

func fixtures(b *testing.B) (*dataset.Dataset, []dataset.Segment) {
	b.Helper()
	fixOnce.Do(func() {
		d, err := falldet.Synthesize(falldet.SynthConfig{
			WorksiteSubjects: 3, KFallSubjects: 3, LongTaskSeconds: 5, Seed: 9,
		})
		if err != nil {
			panic(err)
		}
		segs, err := d.ExtractAll(dataset.SegmentConfig{WindowMS: 400, Overlap: 0.5})
		if err != nil {
			panic(err)
		}
		fixData, fixSegs = d, segs
	})
	return fixData, fixSegs
}

func randomWindow(T int, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(T, imu.NumChannels)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	return x
}

// ---- E5 (Fig. 1): trial synthesis ----

func Benchmark_Fig1_TrialSynthesis(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	subj := synth.NewSubject(1, rng)
	task, _ := synth.TaskByID(30)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := synth.GenerateTrial(subj, task, 0, 6, rng)
		if len(tr.Samples) == 0 {
			b.Fatal("empty trial")
		}
	}
}

// ---- Pre-processing kernels (shared by every experiment) ----

func Benchmark_Preprocess_ButterworthFiltFilt(b *testing.B) {
	f := dsp.MustButterworth(4, 5, 100)
	x := make([]float64, 3000) // a 30 s channel
	for i := range x {
		x[i] = rand.New(rand.NewSource(2)).NormFloat64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.FiltFilt(x)
	}
}

func Benchmark_Preprocess_SensorFusion(b *testing.B) {
	fus := imu.MustNewFusion(100, 0.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fus.Update(imu.Vec3{Z: 1}, imu.Vec3{X: 5})
	}
}

// ---- E7 (§III-A sweep): segmentation across the design grid ----

func Benchmark_Sweep_Segmentation(b *testing.B) {
	d, _ := fixtures(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, win := range []int{100, 200, 300, 400} {
			for _, ov := range []float64{0, 0.25, 0.5, 0.75} {
				if _, err := d.ExtractAll(dataset.SegmentConfig{WindowMS: win, Overlap: ov}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// ---- E1 (Table III): per-model inference and training ----

func benchInference(b *testing.B, kind model.Kind, windowMS int) {
	rng := rand.New(rand.NewSource(3))
	T := windowMS / 10
	m, err := model.New(kind, model.Config{WindowSamples: T}, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := randomWindow(T, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Score(x)
	}
}

func Benchmark_Table3_Inference_MLP_400ms(b *testing.B)  { benchInference(b, model.KindMLP, 400) }
func Benchmark_Table3_Inference_LSTM_400ms(b *testing.B) { benchInference(b, model.KindLSTM, 400) }
func Benchmark_Table3_Inference_ConvLSTM_400ms(b *testing.B) {
	benchInference(b, model.KindConvLSTM, 400)
}
func Benchmark_Table3_Inference_CNN_200ms(b *testing.B) { benchInference(b, model.KindCNN, 200) }
func Benchmark_Table3_Inference_CNN_300ms(b *testing.B) { benchInference(b, model.KindCNN, 300) }
func Benchmark_Table3_Inference_CNN_400ms(b *testing.B) { benchInference(b, model.KindCNN, 400) }

func Benchmark_Table3_TrainStep_CNN(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	m, err := model.New(model.KindCNN, model.Config{WindowSamples: 40}, rng)
	if err != nil {
		b.Fatal(err)
	}
	loss := nn.NewWeightedBCE(1, 10)
	x := randomWindow(40, 6)
	opt := nn.NewAdam(1e-3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Net.ZeroGrad()
		p := m.Net.Forward(x, true).Data()[0]
		m.Net.Backward(loss.Grad(p, i%2))
		opt.Step(m.Net.Params(), 1)
	}
}

// ---- E15: data-parallel training (serial vs sharded mini-batches) ----

func benchParallelFit(b *testing.B, workers int) {
	train := make([]nn.Example, 192)
	for i := range train {
		train[i] = nn.Example{X: randomWindow(40, int64(100+i)), Y: i % 2}
	}
	val := train[:32]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := model.New(model.KindCNN, model.Config{WindowSamples: 40}, rand.New(rand.NewSource(17)))
		if err != nil {
			b.Fatal(err)
		}
		tr := nn.NewTrainer(m.Net, nn.NewAdam(1e-3),
			nn.TrainConfig{Epochs: 2, Patience: 2, BatchSize: 32, Workers: workers},
			rand.New(rand.NewSource(18)))
		tr.Replicate = m.Replicate
		if _, err := tr.Fit(train, val); err != nil {
			b.Fatal(err)
		}
	}
}

func Benchmark_Parallel_Fit_Workers1(b *testing.B) { benchParallelFit(b, 1) }
func Benchmark_Parallel_Fit_Workers2(b *testing.B) { benchParallelFit(b, 2) }
func Benchmark_Parallel_Fit_Workers4(b *testing.B) { benchParallelFit(b, 4) }

// ---- E2/E3 (Table IV): event-level analysis ----

func Benchmark_Table4_EventAnalysis(b *testing.B) {
	_, segs := fixtures(b)
	scored := make([]eval.ScoredSegment, len(segs))
	rng := rand.New(rand.NewSource(7))
	for i := range segs {
		scored[i] = eval.ScoredSegment{Segment: segs[i], Score: rng.Float64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.EventAnalysis(scored, 0.5)
	}
}

// ---- E8 (Table I): threshold baselines ----

func Benchmark_Table1_ThresholdScore(b *testing.B) {
	th, err := model.NewThreshold(model.KindThresholdAcc)
	if err != nil {
		b.Fatal(err)
	}
	x := randomWindow(40, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th.Score(x)
	}
}

// ---- E4 (§IV-C): edge inference, quantized vs float, streaming ----

func edgeFixtures(b *testing.B) (*model.NetModel, *quant.QNetwork) {
	b.Helper()
	rng := rand.New(rand.NewSource(9))
	m, err := model.New(model.KindCNN, model.Config{WindowSamples: 40}, rng)
	if err != nil {
		b.Fatal(err)
	}
	cal := make([]*tensor.Tensor, 8)
	for i := range cal {
		cal[i] = randomWindow(40, int64(10+i))
	}
	c, err := quant.Calibrate(m.Net, cal)
	if err != nil {
		b.Fatal(err)
	}
	qn, err := quant.Build(m.Net, c, []int{40, 9})
	if err != nil {
		b.Fatal(err)
	}
	return m, qn
}

func Benchmark_Edge_FloatInference(b *testing.B) {
	m, _ := edgeFixtures(b)
	x := randomWindow(40, 20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Score(x)
	}
}

func Benchmark_Edge_QuantizedInference(b *testing.B) {
	_, qn := edgeFixtures(b)
	x := randomWindow(40, 21)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qn.Predict(x)
	}
}

func Benchmark_Edge_StreamingPush(b *testing.B) {
	th, _ := model.NewThreshold(model.KindThresholdAcc)
	det, err := edge.NewDetector(th, edge.DetectorConfig{WindowMS: 400, Overlap: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Push(imu.Vec3{Z: 1}, imu.Vec3{})
	}
}

func Benchmark_Edge_StreamingPushCNN(b *testing.B) {
	// The deployment-shaped push: full CNN classifier behind the
	// streaming pipeline. Steady state must report 0 allocs/op.
	m, _ := edgeFixtures(b)
	det, err := edge.NewDetector(m, edge.DetectorConfig{WindowMS: 400, Overlap: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3*det.Window; i++ { // fill the ring, warm layer scratch
		det.Push(imu.Vec3{Z: 1}, imu.Vec3{})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Push(imu.Vec3{Z: 1}, imu.Vec3{})
	}
}

func Benchmark_Edge_StreamingPushCNN_F32(b *testing.B) {
	// The same deployment-shaped push lowered to the float32 inference
	// width. Must also hold 0 allocs/op, and bench.sh gates its
	// speedup over the float64 row: single-precision halves the
	// ring/cache footprint, so losing the win means the lowered
	// kernels regressed.
	m, _ := edgeFixtures(b)
	det, err := edge.NewDetectorOf[float32](m, edge.DetectorConfig{WindowMS: 400, Overlap: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3*det.Window; i++ {
		det.Push(imu.Vec3{Z: 1}, imu.Vec3{})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Push(imu.Vec3{Z: 1}, imu.Vec3{})
	}
}

func Benchmark_Edge_Quantization(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	m, err := model.New(model.KindCNN, model.Config{WindowSamples: 40}, rng)
	if err != nil {
		b.Fatal(err)
	}
	cal := make([]*tensor.Tensor, 16)
	for i := range cal {
		cal[i] = randomWindow(40, int64(30+i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := quant.Calibrate(m.Net, cal)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := quant.Build(m.Net, c, []int{40, 9}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E17 (cascade): supervised degradation, push cost per tier ----

func cascadeFixture(b *testing.B) *cascade.Cascade {
	b.Helper()
	rng := rand.New(rand.NewSource(51))
	primary, err := model.New(model.KindCNN, model.Config{WindowSamples: 40}, rng)
	if err != nil {
		b.Fatal(err)
	}
	fallback, err := model.New(model.KindCNNAccel, model.Config{WindowSamples: 40}, rng)
	if err != nil {
		b.Fatal(err)
	}
	c, err := cascade.New(primary, fallback, cascade.Config{WindowMS: 400, Overlap: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// benchCascadePush measures the steady-state push cost with the
// supervisor settled at one tier. Every variant must report 0
// allocs/op: the real-time contract holds at every degradation level.
func benchCascadePush(b *testing.B, want cascade.Tier, push func(c *cascade.Cascade, i int) cascade.Decision) {
	c := cascadeFixture(b)
	n := 0
	for i := 0; i < 3*c.Window(); i++ { // fill the ring, warm the primary's scratch
		c.Push(imu.Vec3{Z: 1 + 0.01*float64(i%7)}, imu.Vec3{X: float64(i % 5)})
		n++
	}
	for i := 0; i < 4*c.Window(); i++ { // enter the fault regime, warm the deciding tier
		push(c, n)
		n++
	}
	if got := c.SupervisorTier(); got != want {
		b.Fatalf("supervisor settled at %v, want %v", got, want)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		push(c, n)
		n++
	}
}

func Benchmark_Cascade_PushPrimary(b *testing.B) {
	benchCascadePush(b, cascade.TierPrimary, func(c *cascade.Cascade, i int) cascade.Decision {
		return c.Push(imu.Vec3{Z: 1 + 0.01*float64(i%7)}, imu.Vec3{X: float64(i % 5)})
	})
}

func Benchmark_Cascade_PushPrimary_F32(b *testing.B) {
	// The healthy-tier push with both CNN tiers lowered to float32 —
	// the width a deployed cascade runs at. Same 0 allocs/op contract.
	rng := rand.New(rand.NewSource(51))
	primary, err := model.New(model.KindCNN, model.Config{WindowSamples: 40}, rng)
	if err != nil {
		b.Fatal(err)
	}
	fallback, err := model.New(model.KindCNNAccel, model.Config{WindowSamples: 40}, rng)
	if err != nil {
		b.Fatal(err)
	}
	c, err := cascade.NewOf[float32](primary, fallback, cascade.Config{WindowMS: 400, Overlap: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	push := func(i int) cascade.Decision {
		return c.Push(imu.Vec3{Z: 1 + 0.01*float64(i%7)}, imu.Vec3{X: float64(i % 5)})
	}
	n := 0
	for i := 0; i < 7*c.Window(); i++ {
		push(n)
		n++
	}
	if got := c.SupervisorTier(); got != cascade.TierPrimary {
		b.Fatalf("supervisor settled at %v, want %v", got, cascade.TierPrimary)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		push(n)
		n++
	}
}

func Benchmark_Cascade_PushFallback(b *testing.B) {
	nan := math.NaN()
	benchCascadePush(b, cascade.TierFallback, func(c *cascade.Cascade, i int) cascade.Decision {
		return c.Push(imu.Vec3{Z: 1 + 0.01*float64(i%7)}, imu.Vec3{X: nan})
	})
}

func Benchmark_Cascade_PushThreshold(b *testing.B) {
	nan := math.NaN()
	bad := imu.Vec3{X: nan, Y: nan, Z: nan}
	benchCascadePush(b, cascade.TierThreshold, func(c *cascade.Cascade, i int) cascade.Decision {
		return c.Push(bad, bad)
	})
}

// ---- E9 (ablation): augmentation throughput ----

func Benchmark_Ablation_Augment(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	x := randomWindow(40, 12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		augment.TimeWarp(x, augment.TimeWarpConfig{}, rng)
		augment.WindowWarp(x, augment.WindowWarpConfig{}, rng)
	}
}

// ---- E6 (Fig. 2): end-to-end pipeline ----

func Benchmark_Pipeline_EndToEnd(b *testing.B) {
	// One full miniature run per iteration: synthesise → align →
	// filter → segment → train briefly → classify. Expensive by
	// nature; run with -benchtime=1x for a single sample.
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := falldet.Synthesize(falldet.SynthConfig{
			WorksiteSubjects: 2, KFallSubjects: 2,
			Tasks: []int{1, 6, 30}, LongTaskSeconds: 4, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		cfg := falldet.Config{
			WindowMS: 200, Overlap: 0.5,
			Epochs: 2, Patience: 2, ValSubjects: 1, Seed: int64(i),
		}
		det, err := falldet.Train(d, falldet.KindCNN, cfg)
		if err != nil {
			b.Fatal(err)
		}
		segs, err := falldet.ExtractSegments(d, cfg)
		if err != nil {
			b.Fatal(err)
		}
		det.Evaluate(segs[:min(100, len(segs))])
	}
}

// ---- E11 (PreFallKD extension): distillation step ----

func Benchmark_KD_DistillStep(b *testing.B) {
	rng := rand.New(rand.NewSource(41))
	teacher, err := model.New(model.KindCNN, model.Config{WindowSamples: 20}, rng)
	if err != nil {
		b.Fatal(err)
	}
	student, err := model.New(model.KindDistilled, model.Config{WindowSamples: 20}, rng)
	if err != nil {
		b.Fatal(err)
	}
	train := make([]nn.Example, 16)
	for i := range train {
		train[i] = nn.Example{X: randomWindow(20, int64(50+i)), Y: i % 2}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := model.DistillConfig{Train: nn.TrainConfig{Epochs: 1, Patience: 1, BatchSize: 8}}
		if err := model.Distill(teacher, student, train, nil, cfg, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E12 (continuous wear): session synthesis and replay ----

func Benchmark_Session_Generate(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	subj := synth.NewSubject(1, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := synth.GenerateSession(subj, synth.SessionConfig{Minutes: 1}, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func Benchmark_Session_Replay(b *testing.B) {
	rng := rand.New(rand.NewSource(44))
	subj := synth.NewSubject(1, rng)
	s, err := synth.GenerateSession(subj, synth.SessionConfig{Minutes: 1}, rng)
	if err != nil {
		b.Fatal(err)
	}
	th, _ := model.NewThreshold(model.KindThresholdAcc)
	det, err := edge.NewDetector(th, edge.DetectorConfig{WindowMS: 400, Overlap: 0.75})
	if err != nil {
		b.Fatal(err)
	}
	bag := edge.NewAirbag(edge.AirbagConfig{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.EvaluateSession(det, bag, s)
	}
}

func Benchmark_Table3_Inference_CNNBiGRU_400ms(b *testing.B) {
	benchInference(b, model.KindCNNBiGRU, 400)
}

// ---- E18 (serving): runtime overhead per served sample ----

func serveFixture(b *testing.B, snapshotEvery int) (*serve.Runtime, *serve.Session) {
	b.Helper()
	primary, err := model.NewThreshold(model.KindThresholdAcc)
	if err != nil {
		b.Fatal(err)
	}
	fallback, err := model.NewThreshold(model.KindThresholdAcc)
	if err != nil {
		b.Fatal(err)
	}
	c, err := cascade.New(primary, fallback, cascade.Config{WindowMS: 400, Overlap: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	rt := serve.New(serve.Config{QueueLen: 1024, SnapshotEvery: snapshotEvery})
	return rt, rt.Open(c)
}

// benchServePush measures one sample through the full serving path:
// ingress ring, session worker, cascade, outbox. The steady-state
// variant (SnapshotEvery=0) must stay allocation-free — it is the
// per-sample overhead the runtime adds on top of Benchmark_Cascade_*.
func benchServePush(b *testing.B, snapshotEvery int) {
	rt, s := serveFixture(b, snapshotEvery)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ph := float64(i) * 0.13
		s.Push(imu.Vec3{X: 0.05 * math.Sin(ph), Z: 1 + 0.02*math.Cos(ph)},
			imu.Vec3{X: 3 * math.Sin(ph), Y: 2 * math.Cos(ph)})
		if i%512 == 0 {
			s.Quiesce() // keep the ring from capping the measurement
		}
	}
	s.Quiesce()
	b.StopTimer()
	rt.Close()
}

func Benchmark_Serve_SessionPush(b *testing.B) { benchServePush(b, 0) }

func Benchmark_Serve_SessionPushSnapshot(b *testing.B) { benchServePush(b, 256) }

func Benchmark_Serve_SessionPush_F32(b *testing.B) {
	// The served push with a float32-lowered cascade behind the same
	// runtime: Pipeline is an interface, so the session machinery is
	// width-blind — this row isolates the runtime overhead at the
	// deployment width and holds the same 0 allocs/op contract.
	primary, err := model.NewThreshold(model.KindThresholdAcc)
	if err != nil {
		b.Fatal(err)
	}
	fallback, err := model.NewThreshold(model.KindThresholdAcc)
	if err != nil {
		b.Fatal(err)
	}
	c, err := cascade.NewOf[float32](primary, fallback, cascade.Config{WindowMS: 400, Overlap: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	rt := serve.New(serve.Config{QueueLen: 1024})
	s := rt.Open(c)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ph := float64(i) * 0.13
		s.Push(imu.Vec3{X: 0.05 * math.Sin(ph), Z: 1 + 0.02*math.Cos(ph)},
			imu.Vec3{X: 3 * math.Sin(ph), Y: 2 * math.Cos(ph)})
		if i%512 == 0 {
			s.Quiesce()
		}
	}
	s.Quiesce()
	b.StopTimer()
	rt.Close()
}
