#!/bin/sh
# Tier-1 verification gates. Run from the repo root:
#
#   sh scripts/verify.sh
#
# Gates, in order of increasing cost:
#   1. go build ./...        — everything compiles
#   2. go vet ./...          — static analysis clean
#   3. fallvet ./...         — the repo's own invariant linter
#      (DESIGN.md §9 + §13): determinism, hotpath, hottrans,
#      checkedio, redorder, snapshot, exhaustive, floatdet. Built
#      once into bin/fallvet (cheaper than go run resolving the
#      source importer twice) and run in -diff mode against the
#      committed fallvet_baseline.json, so the gate is "no NEW
#      findings and the ledger is honest" — stale ledger entries
#      fail too. Runs before the tests because it is cheaper than
#      the suite and a violation explains itself better than a
#      flaky alloc count.
#   4. go test ./...         — full unit suite
#   5. go test -race ./...   — same suite under the race detector
#      (the streaming Detector is single-goroutine by contract, but
#      the trainer and evaluation harness fan out across workers)
#   6. fuzz smoke            — 10 s each on the hostile-input fuzz
#      targets: FuzzQuantLoad (model-image loader must never panic or
#      over-allocate on arbitrary bytes), FuzzDetectorPush (the
#      streaming pipeline must survive arbitrary sensor input),
#      FuzzCascadePush (the cascade's decision guarantee — a decision
#      every stride, one-step tier moves — under arbitrary faults) and
#      FuzzIncrementalScore (the incremental inference engine must be
#      bit-identical to full-window batch rescoring on arbitrary
#      streams of wear, faults and gaps — the DESIGN §12 equivalence
#      oracle)
#   7. precision agreement   — the float32 path must agree with the
#      float64 path: the decision-agreement tests run the full
#      fault-injection sweep at both widths by name, and
#      FuzzPrecisionScore gets a 10 s smoke (arbitrary streams of
#      wear, faults and gaps must keep the f32/f64 score gap inside
#      the documented tolerance)
#   8. cascade determinism   — the fault sweep over the cascade must be
#      bit-identical on 1 worker and 4 (run redundantly from the suite,
#      but cheap and load-bearing enough to gate by name)
#   9. soak smoke            — the serving-runtime chaos soak at CI
#      size (16 streams, 2 injected mid-fall panics, burst/stall/
#      jitter profiles, one crash-loop) via fallserve -check: zero
#      missed deadlines on healthy sessions, bit-identical
#      post-restore decision streams, goroutine-leak check clean,
#      heap growth bounded
#  10. bench gate            — scripts/bench.sh -short: the hot-path
#      benchmarks run briefly with -benchmem; the gate fails when a
#      steady-state path that must be allocation-free (streaming push,
#      quantized predict, cascade/serve push, warm snapshots) reports
#      allocs/op > 0 OR B/op > 0, when the streaming CNN push drops
#      below 3x its pre-engine seed, when the f32 streaming push is
#      less than 1.2x over the f64 row, or when any benchmark regresses
#      more than 15% in ns/op against the committed baseline
#      (Parallel_Fit excluded as scheduler-noise-dominated). The
#      comparison summary lands in results_ci.txt via the tee below.
#      The committed BENCH_baseline.json comes from a full
#      `sh scripts/bench.sh` run and is left untouched here.
#
# Append the run to results_ci.txt with:
#
#   sh scripts/verify.sh 2>&1 | tee -a results_ci.txt
set -e

echo "== go build ./..."
go build ./...
echo "== go vet ./..."
go vet ./...
echo "== fallvet -diff ./..."
go build -o bin/fallvet ./cmd/fallvet
./bin/fallvet -baseline fallvet_baseline.json -diff ./...
echo "== go test ./..."
go test ./...
echo "== go test -race ./..."
go test -race ./...
echo "== fuzz smoke: FuzzQuantLoad (10s)"
go test ./internal/quant -run='^$' -fuzz='^FuzzQuantLoad$' -fuzztime=10s
echo "== fuzz smoke: FuzzDetectorPush (10s)"
go test ./internal/edge -run='^$' -fuzz='^FuzzDetectorPush$' -fuzztime=10s
echo "== fuzz smoke: FuzzCascadePush (10s)"
go test ./internal/cascade -run='^$' -fuzz='^FuzzCascadePush$' -fuzztime=10s
echo "== fuzz smoke: FuzzIncrementalScore (10s)"
go test ./internal/edge -run='^$' -fuzz='^FuzzIncrementalScore$' -fuzztime=10s
echo "== precision agreement: f32 vs f64 decision sweep"
go test ./falldet -count=1 -run='^Test(Cascade)?PrecisionDecisionAgreement$' -v
echo "== fuzz smoke: FuzzPrecisionScore (10s)"
go test ./internal/edge -run='^$' -fuzz='^FuzzPrecisionScore$' -fuzztime=10s
echo "== cascade determinism: fault sweep, workers 1 vs 4"
go test ./internal/eval -count=1 -run='^TestEvaluateCascadeRobustnessWorkerCountInvariance$' -v
echo "== soak smoke: fallserve -sessions 16 -panics 2 -check"
go run ./cmd/fallserve -sessions 16 -samples 600 -panics 2 -check
echo "== bench gate: scripts/bench.sh -short"
sh scripts/bench.sh -short
echo "== verify: all gates passed"
