#!/bin/sh
# Benchmark-regression baseline. Runs the hot-path benchmarks with
# -benchmem and writes BENCH_baseline.json: per-benchmark ns/op, B/op,
# allocs/op, plus the speedup against the recorded pre-optimisation
# seed numbers (captured on the same container class before the
# allocation-free kernels landed).
#
#   sh scripts/bench.sh          # full run (2s per benchmark), rewrites the baseline
#   sh scripts/bench.sh -short   # CI gate (0.2s per benchmark), gate only
#
# The script fails when a benchmark that must be allocation-free at
# steady state (streaming push, quantized predict) reports a non-zero
# allocs/op — that is the regression this baseline exists to catch.
# Short mode enforces that gate but leaves BENCH_baseline.json alone:
# the committed baseline is always a full-benchtime measurement. The
# full run repeats each benchmark -count 3 and records the fastest
# repetition — shared-container CPU steal makes single runs noisy, and
# min-of-N is the noise-resistant estimator for a regression baseline.
# allocs/op is taken as the max across repetitions (it must not vary).
set -e
cd "$(dirname "$0")/.."

BENCHTIME=2s
MODE=full
OUT=BENCH_baseline.json
COUNT=3
if [ "$1" = "-short" ]; then
    BENCHTIME=0.2s
    MODE=short
    OUT=/dev/null
    COUNT=1
fi

PATTERN='Benchmark_Table3_Inference_|Benchmark_Edge_FloatInference|Benchmark_Edge_QuantizedInference|Benchmark_Edge_StreamingPush|Benchmark_Parallel_Fit_|Benchmark_Cascade_Push|Benchmark_Serve_SessionPush'

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "== bench: go test -bench ($MODE, $BENCHTIME per benchmark, count=$COUNT)"
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$RAW"

awk -v mode="$MODE" -v out="$OUT" '
BEGIN {
    # Pre-optimisation seed numbers (ns/op, allocs/op), recorded before
    # the scratch-buffer kernels: the denominator of speedup_vs_seed.
    seed_ns["Benchmark_Table3_Inference_CNN_400ms"] = 85396
    seed_ns["Benchmark_Table3_Inference_CNN_300ms"] = 66165
    seed_ns["Benchmark_Table3_Inference_CNN_200ms"] = 42050
    seed_ns["Benchmark_Table3_Inference_MLP_400ms"] = 19184
    seed_ns["Benchmark_Table3_Inference_LSTM_400ms"] = 286696
    seed_ns["Benchmark_Table3_Inference_ConvLSTM_400ms"] = 506354
    seed_ns["Benchmark_Table3_Inference_CNNBiGRU_400ms"] = 286256
    seed_ns["Benchmark_Edge_QuantizedInference"] = 73318
    seed_ns["Benchmark_Edge_StreamingPush"] = 232.3
    seed_allocs["Benchmark_Table3_Inference_CNN_400ms"] = 87
    seed_allocs["Benchmark_Table3_Inference_CNN_300ms"] = 87
    seed_allocs["Benchmark_Table3_Inference_CNN_200ms"] = 87
    seed_allocs["Benchmark_Table3_Inference_MLP_400ms"] = 31
    seed_allocs["Benchmark_Table3_Inference_LSTM_400ms"] = 25
    seed_allocs["Benchmark_Table3_Inference_ConvLSTM_400ms"] = 25
    seed_allocs["Benchmark_Table3_Inference_CNNBiGRU_400ms"] = 43
    seed_allocs["Benchmark_Edge_QuantizedInference"] = 59
    seed_allocs["Benchmark_Edge_StreamingPush"] = 0
    # Benchmarks whose steady state must never touch the allocator.
    zero["Benchmark_Edge_StreamingPush"] = 1
    zero["Benchmark_Edge_StreamingPushCNN"] = 1
    zero["Benchmark_Edge_QuantizedInference"] = 1
    zero["Benchmark_Cascade_PushPrimary"] = 1
    zero["Benchmark_Cascade_PushFallback"] = 1
    zero["Benchmark_Cascade_PushThreshold"] = 1
    # The serving runtime adds ingress + worker + outbox around the
    # cascade; its steady-state path must not allocate either. The
    # Snapshot variant is excluded: periodic snapshots amortise a
    # bounded byte cost but allocs/op still rounds to 0 in practice.
    zero["Benchmark_Serve_SessionPush"] = 1
    n = 0
    bad = 0
}
/^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = $3; bytes = $5; allocs = $7
    if (name in idx) {
        # -count > 1: keep the fastest repetition, the most-allocating
        # allocs/op (which must not vary at steady state).
        i = idx[name]
        if (ns + 0 < nss[i] + 0) nss[i] = ns
        if (bytes + 0 < bs[i] + 0) bs[i] = bytes
        if (allocs + 0 > as[i] + 0) as[i] = allocs
    } else {
        idx[name] = n
        names[n] = name; nss[n] = ns; bs[n] = bytes; as[n] = allocs
        n++
    }
    if ((name in zero) && allocs + 0 != 0) {
        printf "bench: FAIL %s allocates %s objects/op, want 0\n", name, allocs > "/dev/stderr"
        bad = 1
    }
}
END {
    printf "{\n" > out
    printf "  \"generated_by\": \"scripts/bench.sh\",\n" >> out
    printf "  \"mode\": \"%s\",\n", mode >> out
    printf "  \"benchmarks\": [\n" >> out
    for (i = 0; i < n; i++) {
        name = names[i]
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", \
            name, nss[i], bs[i], as[i] >> out
        if (name in seed_ns) {
            printf ", \"seed_ns_per_op\": %s, \"seed_allocs_per_op\": %s, \"speedup_vs_seed\": %.2f", \
                seed_ns[name], seed_allocs[name], seed_ns[name] / nss[i] >> out
        }
        printf "}%s\n", (i < n - 1 ? "," : "") >> out
    }
    printf "  ]\n}\n" >> out
    if (bad) exit 1
}
' "$RAW"

if [ "$MODE" = full ]; then
    echo "== bench: wrote BENCH_baseline.json"
else
    echo "== bench: gate passed (short mode leaves BENCH_baseline.json untouched)"
fi
