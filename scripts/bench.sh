#!/bin/sh
# Benchmark-regression baseline. Runs the hot-path benchmarks with
# -benchmem and writes BENCH_baseline.json: per-benchmark ns/op, B/op,
# allocs/op, plus the speedup against the recorded pre-optimisation
# seed numbers (captured on the same container class before the
# allocation-free kernels landed).
#
#   sh scripts/bench.sh          # full run (2s per benchmark), rewrites the baseline
#   sh scripts/bench.sh -short   # CI gate (0.2s per benchmark), gate only
#
# The script fails when:
#   - a benchmark that must be allocation-free at steady state
#     (streaming push, quantized predict, cascade/serve push) reports a
#     non-zero allocs/op OR a non-zero B/op — bytes without allocs
#     means an amortised allocation is hiding in the averaging;
#   - the incremental streaming path loses its headline win: the
#     Benchmark_Edge_StreamingPushCNN speedup over the pre-engine seed
#     drops below 3x;
#   - the f32 streaming push (Benchmark_Edge_StreamingPushCNN_F32)
#     runs less than 1.2x faster than the f64 row measured in the same
#     run — the SSE/AVX f32 kernels must stay worth having;
#   - (short mode only) any benchmark regresses more than 15% in ns/op
#     against the committed BENCH_baseline.json. The Parallel_Fit
#     benchmarks are excluded from that gate: multi-worker fits are
#     dominated by scheduler noise at CI benchtimes.
# Short mode enforces the gates but leaves BENCH_baseline.json alone:
# the committed baseline is always a full-benchtime measurement. The
# full run repeats each benchmark -count 3 and records the fastest
# repetition — shared-container CPU steal makes single runs noisy, and
# min-of-N is the noise-resistant estimator for a regression baseline.
# allocs/op is taken as the max across repetitions (it must not vary).
# Short mode uses min-of-2 for the same reason: one cold repetition
# must not trip the 15% gate.
set -e
cd "$(dirname "$0")/.."

BENCHTIME=2s
MODE=full
OUT=BENCH_baseline.json
COUNT=3
if [ "$1" = "-short" ]; then
    BENCHTIME=0.2s
    MODE=short
    OUT=/dev/null
    COUNT=2
fi

PATTERN='Benchmark_Table3_Inference_|Benchmark_Edge_FloatInference|Benchmark_Edge_QuantizedInference|Benchmark_Edge_StreamingPush|Benchmark_Parallel_Fit_|Benchmark_Cascade_Push|Benchmark_Serve_SessionPush'

RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "== bench: go test -bench ($MODE, $BENCHTIME per benchmark, count=$COUNT)"
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$RAW"

awk -v mode="$MODE" -v out="$OUT" '
BEGIN {
    # Pre-optimisation seed numbers (ns/op, allocs/op), recorded before
    # the scratch-buffer kernels: the denominator of speedup_vs_seed.
    seed_ns["Benchmark_Table3_Inference_CNN_400ms"] = 85396
    seed_ns["Benchmark_Table3_Inference_CNN_300ms"] = 66165
    seed_ns["Benchmark_Table3_Inference_CNN_200ms"] = 42050
    seed_ns["Benchmark_Table3_Inference_MLP_400ms"] = 19184
    seed_ns["Benchmark_Table3_Inference_LSTM_400ms"] = 286696
    seed_ns["Benchmark_Table3_Inference_ConvLSTM_400ms"] = 506354
    seed_ns["Benchmark_Table3_Inference_CNNBiGRU_400ms"] = 286256
    seed_ns["Benchmark_Edge_QuantizedInference"] = 73318
    seed_ns["Benchmark_Edge_StreamingPush"] = 232.3
    # Batch-rescore numbers captured immediately before the incremental
    # inference engine (DESIGN 12) landed: every stride re-ran the full
    # CNN over the assembled window, and snapshots allocated per image.
    seed_ns["Benchmark_Edge_StreamingPushCNN"] = 4519
    seed_ns["Benchmark_Cascade_PushPrimary"] = 4526
    seed_ns["Benchmark_Cascade_PushFallback"] = 1636
    seed_ns["Benchmark_Cascade_PushThreshold"] = 107.2
    seed_ns["Benchmark_Serve_SessionPush"] = 829.2
    seed_ns["Benchmark_Serve_SessionPushSnapshot"] = 876.7
    seed_allocs["Benchmark_Table3_Inference_CNN_400ms"] = 87
    seed_allocs["Benchmark_Table3_Inference_CNN_300ms"] = 87
    seed_allocs["Benchmark_Table3_Inference_CNN_200ms"] = 87
    seed_allocs["Benchmark_Table3_Inference_MLP_400ms"] = 31
    seed_allocs["Benchmark_Table3_Inference_LSTM_400ms"] = 25
    seed_allocs["Benchmark_Table3_Inference_ConvLSTM_400ms"] = 25
    seed_allocs["Benchmark_Table3_Inference_CNNBiGRU_400ms"] = 43
    seed_allocs["Benchmark_Edge_QuantizedInference"] = 59
    seed_allocs["Benchmark_Edge_StreamingPush"] = 0
    seed_allocs["Benchmark_Edge_StreamingPushCNN"] = 0
    seed_allocs["Benchmark_Cascade_PushPrimary"] = 0
    seed_allocs["Benchmark_Cascade_PushFallback"] = 0
    seed_allocs["Benchmark_Cascade_PushThreshold"] = 0
    seed_allocs["Benchmark_Serve_SessionPush"] = 0
    seed_allocs["Benchmark_Serve_SessionPushSnapshot"] = 0
    # Benchmarks whose steady state must never touch the allocator:
    # both allocs/op AND B/op must be exactly zero. A benchmark can
    # show 0 allocs/op with non-zero B/op when a periodic allocation
    # is amortised below 0.5 allocs/op by the averaging window — the
    # byte count is the sensitive detector for that leak.
    zero["Benchmark_Edge_StreamingPush"] = 1
    zero["Benchmark_Edge_StreamingPushCNN"] = 1
    zero["Benchmark_Edge_QuantizedInference"] = 1
    zero["Benchmark_Cascade_PushPrimary"] = 1
    zero["Benchmark_Cascade_PushFallback"] = 1
    zero["Benchmark_Cascade_PushThreshold"] = 1
    # The serving runtime adds ingress + worker + outbox around the
    # cascade; its steady-state path must not allocate either. Since
    # the envelope writer went append-based and the session ping-pongs
    # two snapshot buffers, that includes the Snapshot variant: a warm
    # checkpoint reuses its buffers end to end.
    zero["Benchmark_Serve_SessionPush"] = 1
    zero["Benchmark_Serve_SessionPushSnapshot"] = 1
    # The float32 instantiations ride the same scratch buffers through
    # generic code: width must never reintroduce an allocation.
    zero["Benchmark_Edge_StreamingPushCNN_F32"] = 1
    zero["Benchmark_Cascade_PushPrimary_F32"] = 1
    zero["Benchmark_Serve_SessionPush_F32"] = 1
    # Headline gates: optimisations the engine must not silently lose.
    # The incremental conv/pool rings bought >4x over batch rescoring;
    # fail if the margin erodes below 3x even while ns/op stays within
    # the 15% regression gate of a drifting baseline.
    min_speedup["Benchmark_Edge_StreamingPushCNN"] = 3.0
    # Paired-width gate: the f32 streaming path exists to be faster —
    # the SSE/AVX kernels (internal/nn/simd) must keep it at
    # least 1.2x over the f64 row measured in the same run, so the
    # ratio is immune to absolute container drift.
    f32_min["Benchmark_Edge_StreamingPushCNN"] = 1.2
    n = 0
    bad = 0
}
/^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = $3; bytes = $5; allocs = $7
    if (name in idx) {
        # -count > 1: keep the fastest repetition, the most-allocating
        # allocs/op (which must not vary at steady state).
        i = idx[name]
        if (ns + 0 < nss[i] + 0) nss[i] = ns
        if (bytes + 0 < bs[i] + 0) bs[i] = bytes
        if (allocs + 0 > as[i] + 0) as[i] = allocs
    } else {
        idx[name] = n
        names[n] = name; nss[n] = ns; bs[n] = bytes; as[n] = allocs
        n++
    }
    if ((name in zero) && allocs + 0 != 0) {
        printf "bench: FAIL %s allocates %s objects/op, want 0\n", name, allocs > "/dev/stderr"
        bad = 1
    }
    if ((name in zero) && bytes + 0 != 0) {
        printf "bench: FAIL %s reports %s B/op, want 0 (amortised allocation on a must-be-zero path)\n", name, bytes > "/dev/stderr"
        bad = 1
    }
}
END {
    printf "{\n" > out
    printf "  \"generated_by\": \"scripts/bench.sh\",\n" >> out
    printf "  \"mode\": \"%s\",\n", mode >> out
    printf "  \"benchmarks\": [\n" >> out
    for (i = 0; i < n; i++) {
        name = names[i]
        printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s", \
            name, nss[i], bs[i], as[i] >> out
        if (name in seed_ns) {
            printf ", \"seed_ns_per_op\": %s, \"seed_allocs_per_op\": %s, \"speedup_vs_seed\": %.2f", \
                seed_ns[name], seed_allocs[name], seed_ns[name] / nss[i] >> out
        }
        printf "}%s\n", (i < n - 1 ? "," : "") >> out
    }
    printf "  ]\n}\n" >> out
    for (name in min_speedup) {
        if (!(name in idx)) {
            printf "bench: FAIL %s gated at %.1fx vs seed but never ran\n", name, min_speedup[name] > "/dev/stderr"
            bad = 1
            continue
        }
        sp = seed_ns[name] / (nss[idx[name]] + 0)
        if (sp < min_speedup[name]) {
            printf "bench: FAIL %s is %.2fx vs the %s ns/op seed, gate requires >= %.1fx\n", \
                name, sp, seed_ns[name], min_speedup[name] > "/dev/stderr"
            bad = 1
        } else {
            printf "== bench: %s holds %.2fx vs seed (gate %.1fx)\n", name, sp, min_speedup[name]
        }
    }
    for (name in f32_min) {
        f32name = name "_F32"
        if (!(name in idx) || !(f32name in idx)) {
            printf "bench: FAIL %s/%s width pair gated at %.1fx but did not both run\n", \
                name, f32name, f32_min[name] > "/dev/stderr"
            bad = 1
            continue
        }
        sp = (nss[idx[name]] + 0) / (nss[idx[f32name]] + 0)
        if (sp < f32_min[name]) {
            printf "bench: FAIL %s is %.2fx over the f64 row, gate requires >= %.1fx\n", \
                f32name, sp, f32_min[name] > "/dev/stderr"
            bad = 1
        } else {
            printf "== bench: %s holds %.2fx over f64 (gate %.1fx)\n", f32name, sp, f32_min[name]
        }
    }
    if (bad) exit 1
}
' "$RAW"

if [ "$MODE" = full ]; then
    echo "== bench: wrote BENCH_baseline.json"
else
    # Regression gate: every benchmark present in the committed
    # full-benchtime baseline must stay within 15% of its recorded
    # ns/op. min-of-2 above absorbs one cold repetition; 15% absorbs
    # the residual shared-container jitter. Parallel_Fit is excluded —
    # multi-worker training runs are scheduler-noise-dominated at
    # 0.2s benchtime and would make the gate flaky without making it
    # more sensitive on the paths this repo optimises.
    awk '
    FNR == NR {
        if (match($0, /"name": "[^"]*"/)) {
            nm = substr($0, RSTART + 9, RLENGTH - 10)
            if (match($0, /"ns_per_op": [0-9.]+/))
                base[nm] = substr($0, RSTART + 13, RLENGTH - 13) + 0
        }
        next
    }
    /^Benchmark/ && /ns\/op/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        ns = $3 + 0
        if (!(name in cur) || ns < cur[name]) cur[name] = ns
    }
    END {
        bad = 0
        checked = 0
        for (name in cur) {
            if (name ~ /^Benchmark_Parallel_Fit_/) continue
            if (!(name in base)) continue # new benchmark: no baseline until the next full run
            checked++
            if (cur[name] > base[name] * 1.15) {
                printf "bench: FAIL %s at %.4g ns/op regressed >15%% vs the committed baseline %.4g ns/op\n", \
                    name, cur[name], base[name] > "/dev/stderr"
                bad = 1
            }
        }
        if (checked == 0) {
            print "bench: FAIL regression gate matched zero benchmarks against BENCH_baseline.json" > "/dev/stderr"
            bad = 1
        }
        if (bad) exit 1
        printf "== bench: regression gate passed: %d benchmarks within 15%% of BENCH_baseline.json\n", checked
    }
    ' BENCH_baseline.json "$RAW"
    echo "== bench: gates passed (short mode leaves BENCH_baseline.json untouched)"
fi
