// Command falledge demonstrates the real-time on-device pipeline: it
// trains (or loads) a detector, replays trials through the streaming
// detector sample by sample, and prints the airbag trigger timeline
// with inflation-deadline accounting, plus the STM32F722 cost report.
//
//	falledge -window 400 -overlap 0.75 -trials 20
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/falldet"
	"repro/internal/dataset"
	"repro/internal/edge"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("falledge: ")
	window := flag.Int("window", 400, "segment size, ms")
	overlap := flag.Float64("overlap", 0.75, "streaming overlap (higher = denser evaluation grid)")
	epochs := flag.Int("epochs", 25, "training epochs")
	subjects := flag.Int("subjects", 6, "subjects per source")
	maxTrials := flag.Int("trials", 12, "trials to replay verbosely")
	seed := flag.Int64("seed", 1, "random seed")
	load := flag.String("load", "", "load CNN weights instead of training")
	flag.Parse()

	data, err := falldet.Synthesize(falldet.SynthConfig{
		WorksiteSubjects: *subjects, KFallSubjects: *subjects, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := falldet.Config{
		WindowMS: *window, Overlap: *overlap,
		Epochs: *epochs, Patience: max(3, *epochs/4),
		MaxTrainNeg: 3000, Seed: *seed,
	}

	var det *falldet.Detector
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			log.Fatal(err)
		}
		det, err = falldet.Load(f, falldet.KindCNN, cfg)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded CNN weights from %s\n", *load)
	} else {
		fmt.Println("training the CNN (use -load to skip)...")
		det, err = falldet.Train(data, falldet.KindCNN, cfg)
		if err != nil {
			log.Fatal(err)
		}
	}

	// Device cost report.
	segs, err := falldet.ExtractSegments(data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := det.Quantize(falldet.CalibrationWindows(segs, 100, *seed), edge.STM32F722())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s: %.2f KiB flash, %.2f KiB RAM, %v inference + %v fusion per segment\n\n",
		dep.Target.Name, dep.FlashKiB, dep.RAMKiB, dep.InferenceTime, dep.FusionTime)

	stream, err := det.Stream()
	if err != nil {
		log.Fatal(err)
	}

	shown := 0
	var falls, inTime, adls, falseAlarms int
	for i := range data.Trials {
		tr := &data.Trials[i]
		sim := stream.Simulate(tr)
		if tr.IsFall() {
			falls++
			if sim.InTime {
				inTime++
			}
		} else {
			adls++
			if sim.FalseAlarm {
				falseAlarms++
			}
		}
		if shown < *maxTrials {
			shown++
			describe(tr, sim)
		}
	}
	fmt.Printf("\nsummary: %d/%d falls triggered with ≥%d ms lead; %d/%d ADL false activations\n",
		inTime, falls, dataset.AirbagInflationMS, falseAlarms, adls)
}

func describe(tr *dataset.Trial, sim edge.TrialSim) {
	kind := "ADL "
	if tr.IsFall() {
		kind = "FALL"
	}
	switch {
	case tr.IsFall() && sim.InTime:
		fmt.Printf("  %s task %2d subj %3d: airbag fired at sample %d, %.0f ms before impact ✓\n",
			kind, tr.Task, tr.Subject, sim.TriggerSample, sim.LeadTimeMS)
	case tr.IsFall() && sim.Triggered:
		fmt.Printf("  %s task %2d subj %3d: fired at sample %d but only %.0f ms lead ✗\n",
			kind, tr.Task, tr.Subject, sim.TriggerSample, sim.LeadTimeMS)
	case tr.IsFall():
		fmt.Printf("  %s task %2d subj %3d: fall missed ✗\n", kind, tr.Task, tr.Subject)
	case sim.FalseAlarm:
		fmt.Printf("  %s task %2d subj %3d: spurious activation at sample %d ✗\n",
			kind, tr.Task, tr.Subject, sim.TriggerSample)
	default:
		fmt.Printf("  %s task %2d subj %3d: quiet ✓\n", kind, tr.Task, tr.Subject)
	}
}
