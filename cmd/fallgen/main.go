// Command fallgen synthesises the two dataset flavours (worksite and
// KFall) to CSV files in the flat per-sample interchange format, for
// inspection or for feeding cmd/falltrain.
//
//	fallgen -out data/ -ws 29 -kf 32 -seed 7
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fallgen: ")
	out := flag.String("out", ".", "output directory")
	ws := flag.Int("ws", 29, "worksite subjects (paper: 29)")
	kf := flag.Int("kf", 32, "kfall subjects (paper: 32)")
	trials := flag.Int("trials", 1, "trials per subject per task")
	longSec := flag.Float64("long", 8, "duration of the 30-second static tasks")
	seed := flag.Int64("seed", 1, "random seed")
	align := flag.Bool("align", false, "standardise units/orientation before writing")
	flag.Parse()

	opt := synth.Options{TrialsPerTask: *trials, LongTaskSeconds: *longSec}
	write := func(name string, d *dataset.Dataset) {
		if *align {
			d.StandardizeAll()
		}
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		err = d.WriteCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
		st := d.ComputeStats()
		fmt.Printf("%s: %d trials (%d falls), %d subjects, %d samples\n",
			path, st.Trials, st.Falls, st.Subjects, st.Samples)
	}

	if *ws > 0 {
		d, err := synth.GenerateWorksite(*ws, opt, *seed)
		if err != nil {
			log.Fatal(err)
		}
		write("worksite.csv", d)
	}
	if *kf > 0 {
		d, err := synth.GenerateKFall(*kf, opt, *seed+1)
		if err != nil {
			log.Fatal(err)
		}
		write("kfall.csv", d)
	}
}
