// Command falltrain trains one detector and reports its
// subject-independent cross-validation metrics, optionally saving the
// deployable weights. Data comes from CSV files written by
// cmd/fallgen (falling back to in-process synthesis when none given).
//
//	falltrain -model cnn -window 400 -overlap 0.5 -csv worksite.csv -csv kfall.csv -save cnn.gob
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/falldet"
	"repro/internal/dataset"
)

type csvList []string

func (c *csvList) String() string     { return strings.Join(*c, ",") }
func (c *csvList) Set(v string) error { *c = append(*c, v); return nil }

func main() {
	log.SetFlags(0)
	log.SetPrefix("falltrain: ")
	var csvs csvList
	flag.Var(&csvs, "csv", "dataset CSV (repeatable); omit to synthesise")
	modelName := flag.String("model", "cnn", "cnn | mlp | lstm | convlstm | thr-acc | thr-gyro")
	window := flag.Int("window", 400, "segment size, ms")
	overlap := flag.Float64("overlap", 0.5, "segment overlap fraction")
	epochs := flag.Int("epochs", 40, "max training epochs")
	folds := flag.Int("folds", 3, "cross-validation folds")
	nval := flag.Int("nval", 1, "validation subjects per fold")
	maxNeg := flag.Int("maxneg", 3000, "cap on negative training segments (0 = all)")
	seed := flag.Int64("seed", 1, "random seed")
	save := flag.String("save", "", "write trained weights (network models only)")
	verbose := flag.Bool("v", false, "per-fold progress on stderr")
	flag.Parse()

	kind, err := parseKind(*modelName)
	if err != nil {
		log.Fatal(err)
	}

	var data *falldet.Dataset
	if len(csvs) == 0 {
		fmt.Println("no -csv given; synthesising a 6+6-subject dataset")
		data, err = falldet.Synthesize(falldet.SynthConfig{
			WorksiteSubjects: 6, KFallSubjects: 6, Seed: *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
	} else {
		data = &falldet.Dataset{}
		for _, path := range csvs {
			f, err := os.Open(path)
			if err != nil {
				log.Fatal(err)
			}
			d, err := dataset.ReadCSV(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				log.Fatalf("%s: %v", path, err)
			}
			data.Merge(d)
		}
		data.StandardizeAll()
		data.LowPass()
	}

	cfg := falldet.Config{
		WindowMS:    *window,
		Overlap:     *overlap,
		Epochs:      *epochs,
		Patience:    max(3, *epochs/4),
		MaxTrainNeg: *maxNeg,
		Folds:       *folds,
		ValSubjects: *nval,
		Seed:        *seed,
	}
	if *verbose {
		cfg.Log = os.Stderr
	}

	res, err := falldet.CrossValidate(data, kind, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s @ %d ms / %.0f%% overlap (%d-fold subject-independent CV)\n",
		kind, *window, 100**overlap, *folds)
	for i, f := range res.Folds {
		fmt.Printf("  fold %d: %v\n", i+1, &f.Confusion)
	}
	fmt.Printf("  pooled: %v\n", &res.Pooled)
	st := falldet.EventAnalysis(res, 0.5)
	fmt.Printf("  events: %.2f%% falls missed, %.2f%% ADL false positives\n",
		st.AllFallMissPct, st.AllADLFPPct)

	if *save != "" {
		det, err := falldet.Train(data, kind, cfg)
		if err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*save)
		if err != nil {
			log.Fatal(err)
		}
		err = det.Save(f)
		// The close error matters on the write path: a full disk can
		// surface only here, and a truncated artifact must not pass as
		// saved.
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("saved deployable weights to %s\n", *save)
	}
}

func parseKind(s string) (falldet.Kind, error) {
	switch strings.ToLower(s) {
	case "cnn":
		return falldet.KindCNN, nil
	case "mlp":
		return falldet.KindMLP, nil
	case "lstm":
		return falldet.KindLSTM, nil
	case "convlstm":
		return falldet.KindConvLSTM, nil
	case "thr-acc":
		return falldet.KindThresholdAcc, nil
	case "thr-gyro":
		return falldet.KindThresholdGyro, nil
	default:
		return 0, fmt.Errorf("unknown model %q", s)
	}
}
