package main

import (
	"fmt"

	"repro/falldet"
	"repro/internal/dataset"
	"repro/internal/edge"
)

// expPipeline reproduces Figure 2 as a run: every stage of the
// methodology executes end to end — acquisition (synthesis), dataset
// alignment, filtering, segmentation, training, quantization and
// on-edge streaming with airbag-deadline accounting.
func expPipeline(data *falldet.Dataset, sc scale, seed int64) error {
	cfg := sc.config(400, 0.5, seed)

	fmt.Println("stage 1  data acquisition + alignment + 5 Hz Butterworth  ✓ (see dataset header)")

	segs, err := falldet.ExtractSegments(data, cfg)
	if err != nil {
		return err
	}
	pos := 0
	for i := range segs {
		pos += segs[i].Y
	}
	fmt.Printf("stage 2  segmentation: %d segments, %d falling (%.2f%%)\n",
		len(segs), pos, 100*float64(pos)/float64(len(segs)))

	det, err := falldet.Train(data, falldet.KindCNN, cfg)
	if err != nil {
		return err
	}
	c := det.Evaluate(segs)
	fmt.Printf("stage 3  training (augment + class weights + bias init): %v\n", &c)

	dep, err := det.Quantize(falldet.CalibrationWindows(segs, 100, seed), edge.STM32F722())
	if err != nil {
		return err
	}
	fmt.Printf("stage 4  int8 quantization: %.2f KiB flash, %.2f KiB RAM, %v inference\n",
		dep.FlashKiB, dep.RAMKiB, dep.InferenceTime)

	stream, err := det.Stream()
	if err != nil {
		return err
	}
	var falls, detected, inTime, adls, falseAlarms int
	for i := range data.Trials {
		tr := &data.Trials[i]
		sim := stream.Simulate(tr)
		if tr.IsFall() {
			falls++
			if sim.Triggered {
				detected++
			}
			if sim.InTime {
				inTime++
			}
		} else {
			adls++
			if sim.FalseAlarm {
				falseAlarms++
			}
		}
	}
	fmt.Printf("stage 5  streaming airbag simulation over %d trials:\n", len(data.Trials))
	fmt.Printf("         falls: %d/%d detected, %d/%d with ≥%d ms inflation lead\n",
		detected, falls, inTime, falls, dataset.AirbagInflationMS)
	fmt.Printf("         ADLs : %d/%d false airbag activations\n", falseAlarms, adls)
	return nil
}
