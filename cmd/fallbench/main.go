// Command fallbench regenerates every table and figure of the paper's
// evaluation on the synthetic substrate (see DESIGN.md §4 for the
// experiment index):
//
//	fallbench -exp table3            Table III  model × window comparison
//	fallbench -exp table4            Table IV   event-level miss / false-positive analysis
//	fallbench -exp edge              §IV-C      quantization + STM32F722 deployment
//	fallbench -exp fig1              Fig. 1     fall-stage timeline of one trial
//	fallbench -exp pipeline          Fig. 2     end-to-end methodology run
//	fallbench -exp sweep             §III-A     window × overlap design sweep
//	fallbench -exp table1            Table I    threshold baselines vs the CNN
//	fallbench -exp table2            Table II   activity registry + counts
//	fallbench -exp ablation          §III-C     imbalance-countermeasure ablation
//	fallbench -exp kd                extension  PreFallKD-style distillation
//	fallbench -exp session           extension  continuous wear, false alarms/hour
//	fallbench -exp robustness        extension  sensor-fault injection sweep
//	fallbench -exp cascade           extension  supervised detector cascade vs plain pipeline under faults
//	fallbench -exp recovery          extension  crash-safety: checkpoint/resume, artifact chaos
//	fallbench -exp soak              extension  serving-runtime chaos soak: panics, bursts, stalls
//	fallbench -exp all               everything above
//
// -exp also accepts a comma-separated list (e.g. -exp fig1,table3) to
// run several experiments in one invocation over one synthesised
// dataset.
//
// -scale ci (default) runs a reduced cohort in minutes; -scale paper
// runs the faithful 61-subject protocol (hours of CPU). Every
// experiment body runs under the internal/guard runner: panics are
// captured with their stacks, failures retried -retries times with
// backoff, and -timeout bounds each attempt's wall clock.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/falldet"
	"repro/internal/guard"
	"repro/internal/lint"
)

// scale bundles the cohort/training sizes for one preset.
type scale struct {
	name             string
	wsSubjects       int
	kfSubjects       int
	trialsPerTask    int
	longTaskSeconds  float64
	folds, valSubj   int
	epochs, patience int
	maxTrainNeg      int
	verbose          bool
	workers          int
	precision        falldet.Precision
}

// resultsName suffixes a results file with the non-default precision,
// so f32 refreshes sit next to the f64 reference instead of
// overwriting it: results_robustness.txt vs results_robustness_f32.txt.
func (s scale) resultsName(base string) string {
	if s.precision == falldet.PrecisionF64 {
		return base + ".txt"
	}
	return fmt.Sprintf("%s_%s.txt", base, s.precision)
}

func presets(name string) (scale, error) {
	switch name {
	case "ci":
		return scale{
			name: name, wsSubjects: 6, kfSubjects: 6, trialsPerTask: 1,
			longTaskSeconds: 5, folds: 3, valSubj: 1,
			epochs: 12, patience: 6, maxTrainNeg: 3000,
		}, nil
	case "quick":
		return scale{
			name: name, wsSubjects: 6, kfSubjects: 6, trialsPerTask: 1,
			longTaskSeconds: 5, folds: 2, valSubj: 1,
			epochs: 8, patience: 4, maxTrainNeg: 2500,
		}, nil
	case "paper":
		return scale{
			name: name, wsSubjects: 29, kfSubjects: 32, trialsPerTask: 1,
			longTaskSeconds: 30, folds: 5, valSubj: 4,
			epochs: 200, patience: 20, maxTrainNeg: 0,
		}, nil
	default:
		return scale{}, fmt.Errorf("unknown scale %q (want ci or paper)", name)
	}
}

func (s scale) synth(seed int64) falldet.SynthConfig {
	return falldet.SynthConfig{
		WorksiteSubjects: s.wsSubjects,
		KFallSubjects:    s.kfSubjects,
		TrialsPerTask:    s.trialsPerTask,
		LongTaskSeconds:  s.longTaskSeconds,
		Seed:             seed,
	}
}

func (s scale) config(windowMS int, overlap float64, seed int64) falldet.Config {
	cfg := falldet.Config{
		WindowMS:    windowMS,
		Overlap:     overlap,
		Epochs:      s.epochs,
		Patience:    s.patience,
		MaxTrainNeg: s.maxTrainNeg,
		Folds:       s.folds,
		ValSubjects: s.valSubj,
		Seed:        seed,
		Workers:     s.workers,
	}
	if s.verbose {
		cfg.Log = os.Stderr
	}
	return cfg
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("fallbench: ")
	exp := flag.String("exp", "all", "experiment id or comma-separated list: table3, table4, edge, fig1, pipeline, sweep, table1, ablation, recovery, soak, all")
	scaleName := flag.String("scale", "ci", "cohort/training scale: quick, ci or paper")
	seed := flag.Int64("seed", 1, "master random seed")
	verbose := flag.Bool("v", false, "stream per-fold progress to stderr")
	retries := flag.Int("retries", 1, "attempts per experiment (panics and errors are retried)")
	timeout := flag.Duration("timeout", 0, "wall-clock watchdog per experiment attempt (0 = off)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"data-parallel workers for training, folds and sweeps (results are bit-identical for any value)")
	precisionName := flag.String("precision", "f64",
		"streaming-pipeline scalar width for the robustness/cascade sweeps and the soak (f64 or f32); training always runs f64")
	flag.Parse()

	sc, err := presets(*scaleName)
	if err != nil {
		log.Fatal(err)
	}
	sc.verbose = *verbose
	sc.workers = *workers
	if sc.precision, err = falldet.ParsePrecision(*precisionName); err != nil {
		log.Fatal(err)
	}
	if sc.workers < 1 {
		sc.workers = 1
	}

	known := []string{"fig1", "table1", "table2", "table3", "table4", "sweep",
		"ablation", "edge", "kd", "session", "robustness", "cascade", "recovery", "soak", "pipeline"}
	want := map[string]bool{}
	for _, name := range strings.Split(*exp, ",") {
		name = strings.TrimSpace(name)
		if name == "all" {
			for _, k := range known {
				want[k] = true
			}
			continue
		}
		ok := false
		for _, k := range known {
			ok = ok || k == name
		}
		if !ok {
			log.Fatalf("unknown experiment %q", name)
		}
		want[name] = true
	}

	fmt.Printf("== fallbench scale=%s seed=%d workers=%d precision=%s fallvet=%s ==\n", sc.name, *seed, sc.workers, sc.precision, lint.Stamp())
	fmt.Printf("synthesising %d worksite + %d kfall subjects...\n\n", sc.wsSubjects, sc.kfSubjects)
	data, err := falldet.Synthesize(sc.synth(*seed))
	if err != nil {
		log.Fatal(err)
	}
	st := data.ComputeStats()
	fmt.Printf("dataset: %d trials (%d falls / %d ADLs), %d subjects, %.1f min of data\n",
		st.Trials, st.Falls, st.ADLs, st.Subjects, float64(st.Samples)/100/60)
	fmt.Printf("fall duration: mean %.0f ms, shortest %.0f ms\n\n",
		st.FallDurationMeanMS, st.FallDurationShortest)

	gcfg := guard.Config{
		Attempts:  *retries,
		BaseDelay: time.Second,
		MaxDelay:  30 * time.Second,
		Timeout:   *timeout,
		Log:       log.Printf,
	}
	run := func(name string, fn func() error) {
		if !want[name] {
			return
		}
		fmt.Printf("---- %s ----\n", name)
		if err := guard.Run(gcfg, name, fn); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Println()
	}

	run("fig1", func() error { return expFig1(*seed) })
	run("table2", func() error { return expTable2() })
	run("table1", func() error { return expTable1(data, sc, *seed) })
	run("table3", func() error { return expTable3(data, sc, *seed) })
	run("table4", func() error { return expTable4(data, sc, *seed) })
	run("sweep", func() error { return expSweep(data, sc, *seed) })
	run("ablation", func() error { return expAblation(data, sc, *seed) })
	run("edge", func() error { return expEdge(data, sc, *seed) })
	run("kd", func() error { return expKD(data, sc, *seed) })
	run("session", func() error { return expSession(data, sc, *seed) })
	run("robustness", func() error { return expRobustness(data, sc, *seed) })
	run("cascade", func() error { return expCascade(data, sc, *seed) })
	run("recovery", func() error { return expRecovery(data, sc, *seed) })
	run("soak", func() error { return expSoak(sc, *seed) })
	run("pipeline", func() error { return expPipeline(data, sc, *seed) })
}
