package main

import (
	"fmt"
	"math/rand"
	"os"

	"repro/falldet"
	"repro/internal/dataset"
	"repro/internal/edge"
	"repro/internal/eval"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/report"
)

// expKD runs the knowledge-distillation extension (the PreFallKD idea
// the paper cites as related work): a halved student CNN trained (a)
// directly and (b) by distilling a full CNN teacher, compared against
// the teacher, with parameter counts and STM32F722 latency. The
// interesting shape: the distilled student should recover most of the
// teacher's F1 at roughly half the cost.
func expKD(data *falldet.Dataset, sc scale, seed int64) error {
	base := eval.PipelineConfig{
		Segment:       dataset.SegmentConfig{WindowMS: 400, Overlap: 0.5},
		K:             sc.folds,
		NVal:          sc.valSubj,
		AugmentFactor: 2,
		MaxTrainNeg:   sc.maxTrainNeg,
		Train:         nn.TrainConfig{Epochs: sc.epochs, Patience: sc.patience, BatchSize: 32, Workers: sc.workers},
		TuneThreshold: true,
		Seed:          seed,
		Workers:       sc.workers,
	}

	type row struct {
		name   string
		pooled nn.Confusion
		params int
		infer  string
	}
	var rows []row
	dev := edge.STM32F722()

	describe := func(name string, res *eval.Result, kind model.Kind) error {
		rng := rand.New(rand.NewSource(seed))
		m, err := model.New(kind, model.Config{WindowSamples: 40}, rng)
		if err != nil {
			return err
		}
		cost, err := edge.ModelCost(m.Net, []int{40, 9})
		if err != nil {
			return err
		}
		rows = append(rows, row{
			name:   name,
			pooled: res.Pooled,
			params: m.Net.ParamCount(),
			infer:  dev.InferenceTime(cost).String(),
		})
		return nil
	}

	// (1) Teacher: the full proposed CNN.
	teacher, err := eval.RunKFold(data, model.KindCNN, base)
	if err != nil {
		return err
	}
	if err := describe("teacher CNN", teacher, model.KindCNN); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "kd: teacher done")

	// (2) Student trained directly on hard labels.
	direct, err := eval.RunKFold(data, model.KindDistilled, base)
	if err != nil {
		return err
	}
	if err := describe("student, direct", direct, model.KindDistilled); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "kd: direct student done")

	// (3) Student distilled from a per-fold teacher.
	kdCfg := base
	kdCfg.Fitter = func(win, pos, total int, train, val []nn.Example, tc nn.TrainConfig, rng *rand.Rand) (model.Classifier, error) {
		t, err := model.New(model.KindCNN, model.Config{WindowSamples: win, PosCount: pos, TotalCount: total}, rng)
		if err != nil {
			return nil, err
		}
		if err := t.Fit(train, val, tc, rng); err != nil {
			return nil, err
		}
		s, err := model.New(model.KindDistilled, model.Config{WindowSamples: win, PosCount: pos, TotalCount: total}, rng)
		if err != nil {
			return nil, err
		}
		if err := model.Distill(t, s, train, val, model.DistillConfig{Train: tc}, rng); err != nil {
			return nil, err
		}
		return s, nil
	}
	distilled, err := eval.RunKFold(data, model.KindDistilled, kdCfg)
	if err != nil {
		return err
	}
	if err := describe("student, distilled", distilled, model.KindDistilled); err != nil {
		return err
	}

	tb := &report.Table{
		Title:   "Knowledge distillation (PreFallKD-style) — 400 ms / 50 %, %",
		Headers: []string{"Model", "Params", "Inference", "Accuracy", "Precision", "Recall", "F1"},
	}
	for _, r := range rows {
		tb.AddRow(r.name, r.params, r.infer,
			report.Pct(r.pooled.Accuracy()), report.Pct(r.pooled.Precision()),
			report.Pct(r.pooled.Recall()), report.Pct(r.pooled.F1()))
	}
	tb.Fprint(os.Stdout)
	return nil
}
