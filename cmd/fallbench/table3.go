package main

import (
	"fmt"
	"os"

	"repro/falldet"
	"repro/internal/report"
)

// paperTable3 holds the paper's reported numbers (accuracy, precision,
// recall, F1 in percent) for reference columns, keyed by model and
// window.
var paperTable3 = map[string]map[int][4]float64{
	"MLP": {
		200: {96.76, 51.24, 50.00, 49.18},
		300: {96.62, 53.02, 55.39, 54.13},
		400: {96.45, 60.23, 54.63, 54.25},
	},
	"LSTM": {
		200: {97.28, 80.92, 68.62, 72.98},
		300: {97.43, 82.51, 72.08, 75.93},
		400: {97.60, 85.97, 75.74, 79.81},
	},
	"ConvLSTM2D": {
		200: {97.12, 81.24, 61.61, 66.37},
		300: {97.21, 83.67, 63.55, 68.53},
		400: {97.10, 85.57, 65.36, 70.75},
	},
	"CNN (Proposed)": {
		200: {97.93, 85.61, 78.85, 81.75},
		300: {98.01, 86.38, 80.03, 82.85},
		400: {98.28, 90.40, 83.95, 86.69},
	},
}

// expTable3 reproduces Table III: four model families at 200/300/400 ms
// windows with 50 % overlap, subject-independent cross-validation.
func expTable3(data *falldet.Dataset, sc scale, seed int64) error {
	kinds := []falldet.Kind{falldet.KindMLP, falldet.KindLSTM, falldet.KindConvLSTM, falldet.KindCNN}
	windows := []int{200, 300, 400}

	for _, win := range windows {
		tb := &report.Table{
			Title:   fmt.Sprintf("Table III — %d ms segment size (%d ms overlap), %%", win, win/2),
			Headers: []string{"Model", "Accuracy", "Precision", "Recall", "F1-Score", "paper A/P/R/F1"},
		}
		for _, kind := range kinds {
			cfg := sc.config(win, 0.5, seed)
			res, err := falldet.CrossValidate(data, kind, cfg)
			if err != nil {
				return err
			}
			c := res.Pooled
			ref := paperTable3[kind.String()][win]
			tb.AddRow(kind.String(),
				report.Pct(c.Accuracy()), report.Pct(c.Precision()),
				report.Pct(c.Recall()), report.Pct(c.F1()),
				fmt.Sprintf("%.1f/%.1f/%.1f/%.1f", ref[0], ref[1], ref[2], ref[3]))
			fmt.Fprintf(os.Stderr, "table3: finished %s @ %d ms\n", kind, win)
		}
		tb.Fprint(os.Stdout)
		fmt.Println()
	}
	return nil
}
