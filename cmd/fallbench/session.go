package main

import (
	"fmt"
	"os"

	"repro/falldet"
	"repro/internal/report"
)

// expSession is the continuous-wear extension: the trained CNN worn
// for simulated sessions, with the airbag firing policy swept over
// debounce settings. Reports false activations per hour — the
// deployment metric behind the paper's "unnecessary activations make
// it impractical" argument — alongside detection and lead time.
func expSession(data *falldet.Dataset, sc scale, seed int64) error {
	cfg := sc.config(400, 0.75, seed) // dense stride for streaming
	fmt.Println("training the CNN for continuous-wear simulation...")
	det, err := falldet.Train(data, falldet.KindCNN, cfg)
	if err != nil {
		return err
	}

	// Several wearers, compressed fall rate so sessions stay short.
	sessions := make([]*falldet.Session, 0, 4)
	for i := 0; i < 4; i++ {
		s, err := falldet.GenerateSession(1000+i, falldet.SessionConfig{
			Minutes:  6,
			FallRate: 20,
		}, seed+int64(i))
		if err != nil {
			return err
		}
		sessions = append(sessions, s)
	}

	tb := &report.Table{
		Title:   "Continuous-wear simulation — CNN, 400 ms / 75 % stride",
		Headers: []string{"Debounce", "Hours", "Falls", "Detected", "In time", "False/h", "Mean lead (ms)"},
	}
	for _, debounce := range []int{1, 2, 3} {
		var hours, lead float64
		var falls, detected, inTime, fa, leadN int
		for _, s := range sessions {
			out, err := det.EvaluateSession(s, falldet.AirbagConfig{Debounce: debounce})
			if err != nil {
				return err
			}
			hours += out.Hours
			falls += out.Falls
			detected += out.Detected
			inTime += out.InTime
			fa += out.FalseAlarms
			for _, v := range out.LeadTimesMS {
				lead += v
				leadN++
			}
		}
		meanLead := 0.0
		if leadN > 0 {
			meanLead = lead / float64(leadN)
		}
		tb.AddRow(debounce, fmt.Sprintf("%.2f", hours), falls, detected, inTime,
			fmt.Sprintf("%.1f", float64(fa)/hours), fmt.Sprintf("%.0f", meanLead))
		fmt.Fprintf(os.Stderr, "session: debounce %d done\n", debounce)
	}
	tb.Fprint(os.Stdout)
	fmt.Println("higher debounce trades detection latency for fewer spurious activations")
	return nil
}
