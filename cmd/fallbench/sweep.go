package main

import (
	"fmt"
	"os"

	"repro/falldet"
	"repro/internal/report"
)

// expSweep reproduces the §III-A design-space exploration: CNN F1
// across window sizes 100–400 ms and overlaps 0–75 %. The paper picks
// 400 ms / 50 % from this sweep.
func expSweep(data *falldet.Dataset, sc scale, seed int64) error {
	windows := []int{100, 200, 300, 400}
	overlaps := []float64{0, 0.25, 0.5, 0.75}

	tb := &report.Table{
		Title:   "Window × overlap sweep — CNN F1 (%)",
		Headers: []string{"Window"},
	}
	for _, ov := range overlaps {
		tb.Headers = append(tb.Headers, fmt.Sprintf("%.0f%% ovl", 100*ov))
	}
	best, bestF1 := "", -1.0
	for _, win := range windows {
		row := []any{fmt.Sprintf("%d ms", win)}
		for _, ov := range overlaps {
			res, err := falldet.CrossValidate(data, falldet.KindCNN, sc.config(win, ov, seed))
			if err != nil {
				return err
			}
			f1 := res.Pooled.F1()
			row = append(row, report.Pct(f1))
			if f1 > bestF1 {
				bestF1, best = f1, fmt.Sprintf("%d ms / %.0f%%", win, 100*ov)
			}
			fmt.Fprintf(os.Stderr, "sweep: %d ms %.0f%% done\n", win, 100*ov)
		}
		tb.AddRow(row...)
	}
	tb.Fprint(os.Stdout)
	fmt.Printf("best configuration: %s (F1 %.2f%%); paper selects 400 ms / 50%%\n", best, 100*bestF1)
	return nil
}
