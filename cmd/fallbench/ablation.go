package main

import (
	"os"

	"repro/falldet"
	"repro/internal/report"
)

// expAblation isolates the paper's three class-imbalance
// countermeasures (§III-C): fall-segment augmentation, class-weighted
// BCE, and output-bias initialisation. Each variant disables exactly
// one of them.
func expAblation(data *falldet.Dataset, sc scale, seed int64) error {
	variants := []struct {
		name   string
		mutate func(*falldet.Config)
	}{
		{"full (paper)", func(c *falldet.Config) {}},
		{"no augmentation", func(c *falldet.Config) { c.NoAugment = true }},
		{"no class weights", func(c *falldet.Config) { c.NoClassWeights = true }},
		{"no bias init", func(c *falldet.Config) { c.NoBiasInit = true }},
		{"none of the three", func(c *falldet.Config) {
			c.NoAugment, c.NoClassWeights, c.NoBiasInit = true, true, true
		}},
	}
	tb := &report.Table{
		Title:   "Imbalance-countermeasure ablation — CNN, 400 ms / 50 %, %",
		Headers: []string{"Variant", "Accuracy", "Precision", "Recall", "F1-Score"},
	}
	for _, v := range variants {
		cfg := sc.config(400, 0.5, seed)
		v.mutate(&cfg)
		res, err := falldet.CrossValidate(data, falldet.KindCNN, cfg)
		if err != nil {
			return err
		}
		c := res.Pooled
		tb.AddRow(v.name, report.Pct(c.Accuracy()), report.Pct(c.Precision()),
			report.Pct(c.Recall()), report.Pct(c.F1()))
	}
	tb.Fprint(os.Stdout)
	return nil
}
