package main

import (
	"fmt"
	"io"
	"os"

	"repro/falldet"
	"repro/internal/lint"
	"repro/internal/report"
)

// blindingFaults are the fault kinds that blind the plain pipeline
// outright — they quarantine or fault entire channel groups, so the
// base detector fails closed and misses everything that happens during
// the outage. These are the conditions the cascade exists for, and the
// acceptance criterion is checked over them at severity ≥ 0.5.
var blindingFaults = []falldet.FaultKind{
	falldet.FaultGyroNaN,
	falldet.FaultGyroStuck,
	falldet.FaultNaNBurst,
}

// expCascade is the supervised-degradation experiment (EXPERIMENTS.md
// E17): the same fault sweep replayed twice — once through the plain
// hardened pipeline, once through the three-tier cascade — with
// sample-identical fault streams, so every (fault, severity) point is
// a paired comparison. The cascade must never miss more falls than the
// plain detector under a blinding fault at high severity, and no fault
// may push its ADL false-positive rate past 2× the clean baseline.
// Results go to stdout and results_cascade.txt.
func expCascade(data *falldet.Dataset, sc scale, seed int64) error {
	cfg := sc.config(400, 0.75, seed) // dense stride, as in deployment
	fmt.Println("training the cascade (primary CNN + accel-only fallback)...")
	cd, err := falldet.TrainCascade(data, falldet.KindCNN, cfg)
	if err != nil {
		return err
	}

	rcfg := falldet.RobustnessConfig{
		Severities: []float64{0.25, 0.5},
		Seed:       seed,
		Workers:    sc.workers,
		Precision:  sc.precision,
	}
	fmt.Println("sweeping faults through the plain pipeline...")
	plain, err := cd.Primary().EvaluateRobustness(data, rcfg)
	if err != nil {
		return err
	}
	fmt.Println("sweeping the same faults through the cascade...")
	casc, err := cd.EvaluateRobustness(data, rcfg)
	if err != nil {
		return err
	}
	if len(plain.Points) != len(casc.Points) {
		return fmt.Errorf("cascade: sweep shapes diverged: %d vs %d points", len(plain.Points), len(casc.Points))
	}

	out := sc.resultsName("results_cascade")
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	w := io.MultiWriter(os.Stdout, f)

	fmt.Fprintf(w, "Detector cascade under sensor faults — CNN + accel-CNN + threshold floor\n")
	fmt.Fprintf(w, "400 ms / 75 %% stride, scale=%s seed=%d workers=%d precision=%s fallvet=%s\n", sc.name, seed, sc.workers, sc.precision, lint.Stamp())
	fmt.Fprintf(w, "%d fall trials, %d ADL trials; plain and cascade see sample-identical fault streams\n\n",
		casc.Clean.FallTrials, casc.Clean.ADLTrials)

	tb := &report.Table{
		Headers: []string{"Fault", "Severity", "Miss% plain", "Miss% cascade", "ΔMiss",
			"ADL FP% plain", "ADL FP% cascade", "Lead ms", "Evals t0/t1/t2", "Triggers t0/t1/t2"},
	}
	addRow := func(pp, cp falldet.RobustnessPoint) {
		tb.AddRow(cp.Fault,
			fmt.Sprintf("%.2f", cp.Severity),
			fmt.Sprintf("%.1f", 100*pp.MissRate()),
			fmt.Sprintf("%.1f", 100*cp.MissRate()),
			fmt.Sprintf("%+.1f", 100*(cp.MissRate()-pp.MissRate())),
			fmt.Sprintf("%.1f", 100*pp.FalseAlarmRate),
			fmt.Sprintf("%.1f", 100*cp.FalseAlarmRate),
			fmt.Sprintf("%.0f", cp.MeanLeadMS),
			fmt.Sprintf("%d/%d/%d", cp.TierEvals[0], cp.TierEvals[1], cp.TierEvals[2]),
			fmt.Sprintf("%d/%d/%d", cp.TierTriggers[0], cp.TierTriggers[1], cp.TierTriggers[2]))
	}
	addRow(plain.Clean, casc.Clean)
	for i := range casc.Points {
		addRow(plain.Points[i], casc.Points[i])
	}
	tb.Fprint(w)

	// Acceptance criteria, checked over the recorded sweep.
	blinding := map[string]bool{}
	for _, k := range blindingFaults {
		blinding[k.String()] = true
	}
	missOK, fpOK := true, true
	for i := range casc.Points {
		cp, pp := casc.Points[i], plain.Points[i]
		if blinding[cp.Fault] && cp.Severity >= 0.5 && cp.MissRate() > pp.MissRate() {
			missOK = false
			fmt.Fprintf(w, "\nFAIL %s sev %.2f: cascade miss %.1f%% > plain %.1f%%",
				cp.Fault, cp.Severity, 100*cp.MissRate(), 100*pp.MissRate())
		}
		if cp.FalseAlarmRate > 2*casc.Clean.FalseAlarmRate {
			fpOK = false
			fmt.Fprintf(w, "\nFAIL %s sev %.2f: cascade ADL FP rate %.1f%% > 2× clean %.1f%%",
				cp.Fault, cp.Severity, 100*cp.FalseAlarmRate, 100*casc.Clean.FalseAlarmRate)
		}
	}
	fmt.Fprintf(w, "\ncriterion 1 — blinding faults at severity ≥ 0.5 (")
	for i, k := range blindingFaults {
		if i > 0 {
			fmt.Fprint(w, ", ")
		}
		fmt.Fprint(w, k.String())
	}
	fmt.Fprintf(w, "): cascade miss rate ≤ plain: %s\n", passFail(missOK))
	fmt.Fprintf(w, "criterion 2 — no fault pushes cascade ADL FP rate past 2× clean (%.1f%%): %s\n",
		100*casc.Clean.FalseAlarmRate, passFail(fpOK))

	// The budget story, from the deployed stream itself.
	stream, err := cd.Stream()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\ncycle budget @100 Hz on STM32F722: %.0f cycles/sample; worst-case tier cost %.0f (min tier: %v)\n",
		stream.BudgetCycles(), stream.WorstCaseCycles(), stream.MinTier())
	for tier := falldet.TierPrimary; tier < falldet.NumTiers; tier++ {
		fmt.Fprintf(w, "  tier %d (%v): %.0f cycles/sample\n", tier, tier, stream.PerSampleCycles(tier))
	}

	fmt.Fprintln(os.Stderr, "cascade: wrote "+out)
	if !missOK || !fpOK {
		if cerr := f.Close(); cerr != nil {
			return cerr
		}
		return fmt.Errorf("cascade: acceptance criteria violated (see %s)", out)
	}
	return f.Close()
}

func passFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}
