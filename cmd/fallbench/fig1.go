package main

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/dataset"
	"repro/internal/synth"
)

// expFig1 reproduces Figure 1: the stage decomposition of one fall
// event — pre-fall activity, falling phase, the final 150 ms before
// impact, the impact instant, and the post-fall phase — rendered as
// an annotated acceleration-magnitude timeline.
func expFig1(seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	subj := synth.NewSubject(1, rng)
	task, err := synth.TaskByID(30) // forward fall while walking, trip
	if err != nil {
		return err
	}
	tr := synth.GenerateTrial(subj, task, 0, 6, rng)
	dataset.Standardize(&tr)

	fmt.Printf("Fig. 1 — fall stages for task %d (%s)\n", task.ID, task.Name)
	fmt.Printf("trial: %d samples @ 100 Hz; onset %d, impact %d (falling %d ms)\n\n",
		len(tr.Samples), tr.FallOnset, tr.Impact, (tr.Impact-tr.FallOnset)*10)

	truncEnd := tr.TruncatedFallEnd()
	const cols = 100
	binOf := func(sample int) int { return sample * cols / len(tr.Samples) }

	// Acceleration-magnitude sparkline, max-pooled per column.
	levels := []rune(" ▁▂▃▄▅▆▇█")
	maxMag := 0.0
	bins := make([]float64, cols)
	for i, s := range tr.Samples {
		b := binOf(i)
		if m := s.Acc.Norm(); m > bins[b] {
			bins[b] = m
			if m > maxMag {
				maxMag = m
			}
		}
	}
	var spark strings.Builder
	for _, v := range bins {
		ix := int(v / maxMag * float64(len(levels)-1))
		spark.WriteRune(levels[ix])
	}

	// Phase annotation line.
	phase := make([]rune, cols)
	for i := range phase {
		phase[i] = 'P' // pre-fall
	}
	mark := func(lo, hi int, r rune) {
		for b := binOf(lo); b <= binOf(hi-1) && b < cols; b++ {
			phase[b] = r
		}
	}
	mark(tr.FallOnset, truncEnd, 'F')          // falling (usable)
	mark(truncEnd, tr.Impact, 'L')             // last 150 ms (airbag inflating)
	mark(tr.Impact, tr.Impact+12, 'I')         // impact transient
	mark(tr.Impact+12, len(tr.Samples)-1, 'R') // post-fall rest

	fmt.Printf("|acc| g : %s  (peak %.1f g)\n", spark.String(), maxMag)
	fmt.Printf("phase   : %s\n\n", string(phase))
	fmt.Println("legend: P pre-fall activity · F falling (usable for triggering)")
	fmt.Println("        L last 150 ms before impact (airbag inflation window)")
	fmt.Println("        I impact · R post-fall")
	fmt.Printf("\nthe detector must fire inside F: trigger at the end of F still leaves\n")
	fmt.Printf("%d ms for the airbag to inflate before the body reaches the ground\n",
		dataset.AirbagInflationMS)
	return nil
}
