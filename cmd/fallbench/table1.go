package main

import (
	"fmt"
	"os"

	"repro/falldet"
	"repro/internal/report"
)

// expTable1 puts the related work's threshold algorithms (Table I
// context) under the same subject-independent, 150 ms-truncated
// protocol as the CNN: the introduction's claim is that thresholds
// are cheap but lose accuracy, and DL models win once deployability
// is solved.
func expTable1(data *falldet.Dataset, sc scale, seed int64) error {
	kinds := []falldet.Kind{
		falldet.KindThresholdAcc,
		falldet.KindThresholdGyro,
		falldet.KindCNN,
	}
	tb := &report.Table{
		Title:   "Threshold baselines vs CNN — 400 ms / 50 % overlap, %",
		Headers: []string{"Model", "Accuracy", "Precision", "Recall", "F1-Score"},
	}
	for _, kind := range kinds {
		res, err := falldet.CrossValidate(data, kind, sc.config(400, 0.5, seed))
		if err != nil {
			return err
		}
		c := res.Pooled
		tb.AddRow(kind.String(), report.Pct(c.Accuracy()), report.Pct(c.Precision()),
			report.Pct(c.Recall()), report.Pct(c.F1()))
		fmt.Fprintf(os.Stderr, "table1: finished %s\n", kind)
	}
	tb.Fprint(os.Stdout)
	fmt.Println("paper context (Table I): threshold methods reach 92–96 % accuracy on")
	fmt.Println("untruncated falls; under the harder 150 ms-truncated protocol the")
	fmt.Println("learned model should dominate precision/recall.")
	return nil
}
