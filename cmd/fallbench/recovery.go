package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"

	"repro/falldet"
	"repro/internal/dataset"
	"repro/internal/guard"
	"repro/internal/lint"
	"repro/internal/model"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/report"
)

// expRecovery exercises the crash-safety layer end to end — the
// deployment question here is not "how accurate is the model" but
// "what survives a crash": a training run killed mid-flight must
// resume bit-identically from its checkpoint, a corrupted model image
// must be rejected rather than loaded, a diverging run must abort with
// a structured error instead of a poisoned model, and a flaky
// experiment body must be retried by the guard runner. The evidence
// table is written to stdout and results_recovery.txt.
func expRecovery(data *falldet.Dataset, sc scale, seed int64) (retErr error) {
	f, err := os.Create("results_recovery.txt")
	if err != nil {
		return err
	}
	// The results file is evidence: a close error (full disk flushing
	// the last block) must fail the experiment, not vanish.
	defer func() {
		if cerr := f.Close(); retErr == nil {
			retErr = cerr
		}
	}()
	w := io.MultiWriter(os.Stdout, f)
	// Recovery exercises the training path, which always runs float64
	// (DESIGN.md §14), so the stamp is the constant width, not the flag.
	fmt.Fprintf(w, "Recovery & crash-safety evidence — scale=%s seed=%d workers=%d precision=f64 fallvet=%s\n\n", sc.name, seed, sc.workers, lint.Stamp())
	tb := &report.Table{Headers: []string{"Check", "Outcome", "Detail"}}

	segs, err := falldet.ExtractSegments(data, falldet.Config{WindowMS: 200, Overlap: 0.5})
	if err != nil {
		return err
	}
	var train, val []nn.Example
	for i := range segs {
		e := nn.Example{X: segs[i].X, Y: segs[i].Y}
		if i%5 == 0 {
			val = append(val, e)
		} else {
			train = append(train, e)
		}
	}
	winSamples := 200 * dataset.SampleRate / 1000

	// fitWorld rebuilds the network and trainer from scratch with the
	// same seed, so every call starts in an identical world and resume
	// bit-identity is checkable by direct weight comparison.
	fitWorld := func(cfg nn.TrainConfig) (*nn.Network, *nn.History, error) {
		rng := rand.New(rand.NewSource(seed))
		m, err := model.New(model.KindMLP, model.Config{WindowSamples: winSamples}, rng)
		if err != nil {
			return nil, nil, err
		}
		tr := nn.NewTrainer(m.Net, nn.NewAdam(1e-3), cfg, rng)
		tr.Replicate = m.Replicate
		hist, err := tr.Fit(train, val)
		return m.Net, hist, err
	}
	const epochs = 6
	// Data-parallel workers are part of the recovery story: resume must
	// be bit-identical under any worker count (see DESIGN.md §8).
	base := nn.TrainConfig{Epochs: epochs, Patience: epochs, BatchSize: 32, Workers: sc.workers}

	// 1. Kill at epoch 2, resume from the checkpoint, compare against
	// an uninterrupted reference run.
	refNet, _, err := fitWorld(base)
	if err != nil {
		return err
	}
	ckptPath := filepath.Join(os.TempDir(), fmt.Sprintf("fallbench-recovery-%d.ckpt", seed))
	defer os.Remove(ckptPath)
	errKill := errors.New("simulated crash")
	killed := base
	killed.Checkpoint = &nn.Checkpointer{Path: ckptPath}
	killed.AfterEpoch = func(epoch int, _, _ float64) error {
		if epoch == 2 {
			return errKill
		}
		return nil
	}
	if _, _, err := fitWorld(killed); !errors.Is(err, errKill) {
		return fmt.Errorf("recovery: crash not delivered: %v", err)
	}
	resumed := base
	resumed.Checkpoint = &nn.Checkpointer{Path: ckptPath}
	resNet, _, err := fitWorld(resumed)
	if err != nil {
		return err
	}
	identical := true
	refW, resW := refNet.Snapshot(), resNet.Snapshot()
	for i := range refW {
		for j := range refW[i] {
			if refW[i][j] != resW[i][j] {
				identical = false
			}
		}
	}
	tb.AddRow("kill@epoch2 + resume", pass(identical),
		fmt.Sprintf("%d-epoch MLP run, weights bit-identical: %v", epochs, identical))

	// 2. Model-image chaos: every sampled truncation and bit flip of a
	// quantized image must be rejected by quant.Load with an error —
	// never a panic, never a loaded network.
	cal := falldet.CalibrationWindows(segs, 32, seed)
	c, err := quant.Calibrate(refNet, cal)
	if err != nil {
		return err
	}
	qn, err := quant.Build(refNet, c, []int{winSamples, 9})
	if err != nil {
		return err
	}
	var img bytes.Buffer
	if err := qn.Save(&img); err != nil {
		return err
	}
	raw := img.Bytes()
	tryLoad := func(b []byte) (rejected bool, panicked bool) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		_, err := quant.Load(bytes.NewReader(b))
		return err != nil, false
	}
	truncs, flips, rejects, panics := 0, 0, 0, 0
	for n := 0; n < len(raw); n += 97 {
		truncs++
		rej, pan := tryLoad(raw[:n])
		if rej {
			rejects++
		}
		if pan {
			panics++
		}
	}
	for i := 0; i < len(raw); i += 211 {
		for bit := 0; bit < 8; bit++ {
			flips++
			mut := append([]byte(nil), raw...)
			mut[i] ^= 1 << bit
			rej, pan := tryLoad(mut)
			if rej {
				rejects++
			}
			if pan {
				panics++
			}
		}
	}
	chaosOK := rejects == truncs+flips && panics == 0
	tb.AddRow("artifact chaos sweep", pass(chaosOK),
		fmt.Sprintf("%d truncations + %d bit flips on a %d B image: %d rejected, %d panics",
			truncs, flips, len(raw), rejects, panics))
	rej, _ := tryLoad(raw)
	tb.AddRow("pristine image loads", pass(!rej), "unmodified bytes still load")

	// 3. Divergence guard: an absurd exploding-loss bound turns every
	// epoch into a divergence; the trainer must roll back MaxRollbacks
	// times and then abort with a structured *DivergedError.
	divCfg := base
	divCfg.MaxLoss = 1e-12
	divCfg.MaxRollbacks = 2
	_, _, err = fitWorld(divCfg)
	var de *nn.DivergedError
	divOK := errors.As(err, &de) && de.Rollbacks == 3
	detail := fmt.Sprintf("err = %v", err)
	if de != nil {
		detail = fmt.Sprintf("aborted at epoch %d after %d rollbacks", de.Epoch, de.Rollbacks)
	}
	tb.AddRow("divergence abort", pass(divOK), detail)

	// 4. Guard runner: a body that panics, then errors, then succeeds
	// must be healed by retry with the panic stack captured.
	attempts := 0
	err = guard.Run(guard.Config{Attempts: 3}, "flaky-experiment", func() error {
		attempts++
		switch attempts {
		case 1:
			panic("simulated experiment panic")
		case 2:
			return errors.New("simulated transient failure")
		}
		return nil
	})
	tb.AddRow("guard retry", pass(err == nil && attempts == 3),
		fmt.Sprintf("panic + transient error healed in %d attempts", attempts))

	tb.Fprint(w)
	fmt.Fprintln(w, "\npolicy: checkpoints are atomic write-rename with a CRC32 trailer; model")
	fmt.Fprintln(w, "images carry magic/version/kind/shape and a SHA-256 digest verified before")
	fmt.Fprintln(w, "decode; diverged epochs roll back to the last good snapshot with the")
	fmt.Fprintln(w, "learning rate halved; experiments run under a panic-capturing retry guard.")
	fmt.Fprintln(os.Stderr, "recovery: wrote results_recovery.txt")
	if !identical || !chaosOK || rej || !divOK {
		return fmt.Errorf("recovery: evidence checks failed (see table)")
	}
	return nil
}

func pass(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}
