package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/cascade"
	"repro/internal/lint"
	"repro/internal/model"
	"repro/internal/serve"
)

// expSoak is the serving-runtime chaos soak (DESIGN §11): N concurrent
// synthetic IMU streams multiplexed onto detector cascades through
// internal/serve while the harness injects mid-fall pipeline panics,
// ingress bursts past the ring, 200 ms/sample consumer stalls,
// delivery jitter, and one unrecoverable crash-loop. Acceptance —
// zero missed deadlines on healthy sessions, every injected panic
// recovered by snapshot restore with a bit-identical decision stream,
// stalled sessions demoted to the tier floor, no goroutine leaks,
// bounded heap — is asserted, and the table is written to stdout and
// results_soak.txt. Every table cell is deterministic, so the file is
// byte-stable across runs and machines.
func expSoak(sc scale, seed int64) error {
	sessions, samples := 32, 600
	if sc.name == "paper" {
		sessions, samples = 256, 1200
	}
	rep, err := serve.RunSoak(serve.SoakConfig{
		Sessions:   sessions,
		Samples:    samples,
		Panics:     sessions / 8,
		Seed:       seed,
		Background: serve.SynthBackground(seed, samples),
		NewPipeline: func() (serve.Pipeline, error) {
			primary, err := model.NewThreshold(model.KindThresholdAcc)
			if err != nil {
				return nil, err
			}
			fallback, err := model.NewThreshold(model.KindThresholdAcc)
			if err != nil {
				return nil, err
			}
			return cascade.New(primary, fallback, cascade.Config{WindowMS: 400, Overlap: 0.5})
		},
	})
	if err != nil {
		return err
	}

	f, err := os.Create("results_soak.txt")
	if err != nil {
		return err
	}
	w := io.MultiWriter(os.Stdout, f)
	fmt.Fprintf(w, "Serving-runtime chaos soak, scale=%s seed=%d workers=%d fallvet=%s\n\n",
		sc.name, seed, sc.workers, lint.Stamp())
	rep.WriteTable(w)
	if cerr := f.Close(); cerr != nil {
		return cerr
	}
	if errs := rep.Check(); len(errs) > 0 {
		return fmt.Errorf("soak: %d acceptance criteria failed (see results_soak.txt)", len(errs))
	}
	return nil
}
