package main

import (
	"fmt"
	"io"
	"os"

	"repro/falldet"
	"repro/internal/cascade"
	"repro/internal/lint"
	"repro/internal/model"
	"repro/internal/serve"
)

// expSoak is the serving-runtime chaos soak (DESIGN §11): N concurrent
// synthetic IMU streams multiplexed onto detector cascades through
// internal/serve while the harness injects mid-fall pipeline panics,
// ingress bursts past the ring, 200 ms/sample consumer stalls,
// delivery jitter, and one unrecoverable crash-loop. Acceptance —
// zero missed deadlines on healthy sessions, every injected panic
// recovered by snapshot restore with a bit-identical decision stream,
// stalled sessions demoted to the tier floor, no goroutine leaks,
// bounded heap — is asserted, and the table is written to stdout and
// results_soak.txt. Every table cell is deterministic, so the file is
// byte-stable across runs and machines.
func expSoak(sc scale, seed int64) error {
	sessions, samples := 32, 600
	if sc.name == "paper" {
		sessions, samples = 256, 1200
	}
	rep, err := serve.RunSoak(serve.SoakConfig{
		Sessions:   sessions,
		Samples:    samples,
		Panics:     sessions / 8,
		Seed:       seed,
		Background: serve.SynthBackground(seed, samples),
		NewPipeline: func() (serve.Pipeline, error) {
			primary, err := model.NewThreshold(model.KindThresholdAcc)
			if err != nil {
				return nil, err
			}
			fallback, err := model.NewThreshold(model.KindThresholdAcc)
			if err != nil {
				return nil, err
			}
			ccfg := cascade.Config{WindowMS: 400, Overlap: 0.5}
			if sc.precision == falldet.PrecisionF32 {
				return cascade.NewOf[float32](primary, fallback, ccfg)
			}
			return cascade.New(primary, fallback, ccfg)
		},
	})
	if err != nil {
		return err
	}

	out := sc.resultsName("results_soak")
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	w := io.MultiWriter(os.Stdout, f)
	fmt.Fprintf(w, "Serving-runtime chaos soak, scale=%s seed=%d workers=%d precision=%s fallvet=%s\n\n",
		sc.name, seed, sc.workers, sc.precision, lint.Stamp())
	rep.WriteTable(w)
	if cerr := f.Close(); cerr != nil {
		return cerr
	}
	if errs := rep.Check(); len(errs) > 0 {
		return fmt.Errorf("soak: %d acceptance criteria failed (see %s)", len(errs), out)
	}
	return nil
}
