package main

import (
	"fmt"
	"os"

	"repro/falldet"
	"repro/internal/edge"
	"repro/internal/nn"
	"repro/internal/report"
)

// expEdge reproduces §IV-C: train the CNN at the best configuration,
// quantize it to int8, and report the deployment footprint and
// per-segment latency on the STM32F722 device model, verifying that
// quantization does not change the classification behaviour.
func expEdge(data *falldet.Dataset, sc scale, seed int64) error {
	cfg := sc.config(400, 0.5, seed)
	det, err := falldet.Train(data, falldet.KindCNN, cfg)
	if err != nil {
		return err
	}
	segs, err := falldet.ExtractSegments(data, cfg)
	if err != nil {
		return err
	}
	dep, err := det.Quantize(falldet.CalibrationWindows(segs, 200, seed), edge.STM32F722())
	if err != nil {
		return err
	}

	// Float vs quantized behaviour over all segments.
	var floatC, quantC nn.Confusion
	agree := 0
	for i := range segs {
		pf := det.Score(segs[i].X)
		pq := dep.Q.Predict(segs[i].X)
		floatC.Add(pf, segs[i].Y)
		quantC.Add(pq, segs[i].Y)
		if (pf >= 0.5) == (pq >= 0.5) {
			agree++
		}
	}

	tb := &report.Table{
		Title:   "On-edge deployment (STM32F722 @ 216 MHz) — §IV-C",
		Headers: []string{"Metric", "Measured", "Paper"},
	}
	tb.AddRow("Model size (KiB, int8)", fmt.Sprintf("%.2f", dep.FlashKiB), "67.03")
	tb.AddRow("RAM usage (KiB)", fmt.Sprintf("%.2f", dep.RAMKiB), "16.87")
	tb.AddRow("Inference time / segment", dep.InferenceTime.String(), "4 ms")
	tb.AddRow("Sensor fusion / segment", dep.FusionTime.String(), "3 ms")
	tb.AddRow("Fits 256 KiB flash", fmt.Sprintf("%v", dep.FitsFlash), "yes")
	tb.AddRow("Fits 256 KiB RAM", fmt.Sprintf("%v", dep.FitsRAM), "yes")
	tb.AddRow("float F1 (in-sample, %)", report.Pct(floatC.F1()), "unchanged by quantization")
	tb.AddRow("int8 F1 (in-sample, %)", report.Pct(quantC.F1()), "unchanged by quantization")
	tb.AddRow("float/int8 agreement", fmt.Sprintf("%d/%d", agree, len(segs)), "-")
	tb.Fprint(os.Stdout)
	return nil
}
