package main

import (
	"fmt"
	"os"

	"repro/internal/synth"
)

// expTable2 reproduces Table II: the activity registry with fall /
// ADL colouring and per-source membership, plus the derived counts
// the paper quotes (23 ADLs + 21 falls worksite; 21 + 15 KFall).
func expTable2() error {
	var wsF, wsA, kfF, kfA int
	for _, task := range synth.AllTasks() {
		kind := "ADL "
		if task.IsFall() {
			kind = "FALL"
			wsF++
			if task.InKFall {
				kfF++
			}
		} else {
			wsA++
			if task.InKFall {
				kfA++
			}
		}
		src := "worksite-only"
		if task.InKFall {
			src = "both sources"
		}
		red := ""
		if task.Red {
			red = " [red]"
		}
		fmt.Fprintf(os.Stdout, "  %2d  %s  %-60s %s%s\n", task.ID, kind, task.Name, src, red)
	}
	fmt.Printf("\nworksite: %d ADLs + %d falls (paper: 23 + 21)\n", wsA, wsF)
	fmt.Printf("kfall:    %d ADLs + %d falls (paper: 21 + 15)\n", kfA, kfF)
	return nil
}
