package main

import (
	"fmt"
	"io"
	"os"

	"repro/falldet"
	"repro/internal/lint"
	"repro/internal/report"
)

// expRobustness is the sensor-fault robustness sweep: the trained CNN
// replayed through the hardened streaming pipeline while a fault
// injector corrupts the sensor between the recording and the
// detector. Each fault kind is swept over severities and compared
// against the clean baseline — the deployment question is not "how
// accurate is the model" but "how much detector survives a sensor
// that drops, clips, drifts or emits garbage". The table is written
// to stdout and to results_robustness.txt.
func expRobustness(data *falldet.Dataset, sc scale, seed int64) error {
	cfg := sc.config(400, 0.75, seed) // dense stride, as in deployment
	fmt.Println("training the CNN for the robustness sweep...")
	det, err := falldet.Train(data, falldet.KindCNN, cfg)
	if err != nil {
		return err
	}

	rep, err := det.EvaluateRobustness(data, falldet.RobustnessConfig{
		Severities: []float64{0.1, 0.25, 0.5},
		Seed:       seed,
		Workers:    sc.workers,
		Precision:  sc.precision,
	})
	if err != nil {
		return err
	}

	out := sc.resultsName("results_robustness")
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	w := io.MultiWriter(os.Stdout, f)

	fmt.Fprintf(w, "Robustness sweep — CNN, 400 ms / 75 %% stride, scale=%s seed=%d workers=%d precision=%s fallvet=%s\n", sc.name, seed, sc.workers, sc.precision, lint.Stamp())
	fmt.Fprintf(w, "%d fall trials, %d ADL trials; deltas vs clean baseline\n\n",
		rep.Clean.FallTrials, rep.Clean.ADLTrials)

	tb := &report.Table{
		Headers: []string{"Fault", "Severity", "Recall %", "ΔRecall",
			"In-time %", "Lead ms", "ΔLead ms", "FA/h", "ADL FP %", "Quarantined", "Stuck", "Drift", "Missing", "NaN scores"},
	}
	addRow := func(p falldet.RobustnessPoint) {
		tb.AddRow(p.Fault,
			fmt.Sprintf("%.2f", p.Severity),
			fmt.Sprintf("%.1f", 100*p.Recall),
			fmt.Sprintf("%+.1f", -p.DeltaRecall(rep.Clean)),
			fmt.Sprintf("%.1f", 100*p.InTime),
			fmt.Sprintf("%.0f", p.MeanLeadMS),
			fmt.Sprintf("%+.0f", -p.DeltaLeadMS(rep.Clean)),
			fmt.Sprintf("%.2f", p.FalseAlarmsPerHour),
			fmt.Sprintf("%.1f", 100*p.FalseAlarmRate),
			p.Quarantined, p.Stuck, p.Drift, p.Missing, p.BadScores)
	}
	addRow(rep.Clean)
	for _, p := range rep.Points {
		addRow(p)
	}
	tb.Fprint(w)

	badScores := 0
	for _, p := range rep.Points {
		badScores += p.BadScores
	}
	fmt.Fprintf(w, "\nnon-finite probabilities across the whole sweep: %d (hardened pipeline target: 0)\n", badScores)
	fmt.Fprintln(w, "degradation policy: short gaps bridged (Degraded), long gaps re-prime +")
	fmt.Fprintln(w, "full-window warm-up, NaN/Inf quarantined, >25 % anomalous window → Faulted;")
	fmt.Fprintln(w, "Stuck/Drift count per-channel health detections (axis latches, baseline drift)")
	fmt.Fprintln(w, "that quarantine a channel group so a cascade can fail over (results_cascade.txt)")
	fmt.Fprintln(os.Stderr, "robustness: wrote "+out)
	// Close error is the last chance to hear about a truncated results
	// file — it fails the experiment rather than pass silently.
	return f.Close()
}
