package main

import (
	"fmt"
	"os"

	"repro/falldet"
	"repro/internal/report"
	"repro/internal/synth"
)

// expTable4 reproduces Table IV: the event-level analysis of the CNN
// at the best configuration (400 ms, 50 % overlap) — per-task fall
// miss rates (IVa) and per-task ADL false-positive rates (IVb) with
// the red/green aggregation.
func expTable4(data *falldet.Dataset, sc scale, seed int64) error {
	cfg := sc.config(400, 0.5, seed)
	res, err := falldet.CrossValidate(data, falldet.KindCNN, cfg)
	if err != nil {
		return err
	}
	st := falldet.EventAnalysis(res, 0.5)

	ta := &report.Table{
		Title:   "Table IVa — falls misclassified as ADLs (400 ms)",
		Headers: []string{"Task ID", "Events", "Missed", "Miss %"},
	}
	for _, s := range st.FallTasks {
		ta.AddRow(s.Task, s.Events, s.Missed, report.Pct1(s.MissPct))
	}
	ta.AddRow("All", "", "", report.Pct1(st.AllFallMissPct))
	ta.Fprint(os.Stdout)
	fmt.Printf("  paper: 4.17%% of fall events missed overall\n\n")

	tb := &report.Table{
		Title:   "Table IVb — ADLs misclassified as falls (400 ms)",
		Headers: []string{"Task ID", "Red?", "Events", "FP", "FP %"},
	}
	for _, s := range st.ADLTasks {
		red := ""
		if task, err := synth.TaskByID(s.Task); err == nil && task.Red {
			red = "red"
		}
		tb.AddRow(s.Task, red, s.Events, s.Missed, report.Pct1(s.MissPct))
	}
	tb.AddRow("All", "", "", "", report.Pct1(st.AllADLFPPct))
	tb.AddRow("Red", "", "", "", report.Pct1(st.RedADLFPPct))
	tb.AddRow("Green", "", "", "", report.Pct1(st.GreenADLFPPct))
	tb.Fprint(os.Stdout)
	fmt.Printf("  paper: 2.04%% overall, 3.34%% red, 0.46%% green\n")
	return nil
}
