// Command fallinspect prints per-task signal statistics of a dataset
// (CSV from fallgen, or synthesised on the fly): trial counts,
// durations, fall-phase lengths, acceleration extremes — the sanity
// view used to validate the biomechanical generator against the
// paper's descriptions (e.g. falling phases of 150–1100 ms, free-fall
// dips, impact peaks).
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"

	"repro/internal/dataset"
	"repro/internal/dsp"
	"repro/internal/imu"
	"repro/internal/report"
	"repro/internal/synth"
)

type taskStats struct {
	trials     int
	samples    int
	fallDurMS  []float64
	minFallAcc []float64 // min |acc| during falling phase
	peakAcc    float64
	peakGyro   float64
	cadence    []float64 // dominant vertical-axis frequency, Hz
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("fallinspect: ")
	csvPath := flag.String("csv", "", "dataset CSV (omit to synthesise)")
	subjects := flag.Int("subjects", 4, "subjects when synthesising")
	seed := flag.Int64("seed", 1, "seed when synthesising")
	flag.Parse()

	var d *dataset.Dataset
	if *csvPath != "" {
		f, err := os.Open(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		d, err = dataset.ReadCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
	} else {
		var err error
		d, err = synth.GenerateWorksite(*subjects, synth.Options{}, *seed)
		if err != nil {
			log.Fatal(err)
		}
	}
	d.StandardizeAll()

	byTask := map[int]*taskStats{}
	for i := range d.Trials {
		tr := &d.Trials[i]
		st := byTask[tr.Task]
		if st == nil {
			st = &taskStats{}
			byTask[tr.Task] = st
		}
		st.trials++
		st.samples += len(tr.Samples)
		for _, s := range tr.Samples {
			if m := s.Acc.Norm(); m > st.peakAcc {
				st.peakAcc = m
			}
			if m := s.Gyro.Norm(); m > st.peakGyro {
				st.peakGyro = m
			}
		}
		if z := tr.Channel(imu.AccZ); len(z) >= 256 {
			if hz, err := dsp.DominantFrequency(z, dataset.SampleRate, 0.5); err == nil {
				st.cadence = append(st.cadence, hz)
			}
		}
		if tr.IsFall() {
			st.fallDurMS = append(st.fallDurMS, float64(tr.Impact-tr.FallOnset)*10)
			minA := math.Inf(1)
			for _, s := range tr.Samples[tr.FallOnset:tr.Impact] {
				if m := s.Acc.Norm(); m < minA {
					minA = m
				}
			}
			st.minFallAcc = append(st.minFallAcc, minA)
		}
	}

	ids := make([]int, 0, len(byTask))
	for id := range byTask {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	tb := &report.Table{
		Title: "Per-task signal statistics",
		Headers: []string{"Task", "Kind", "Trials", "Mean dur (s)", "Cadence (Hz)",
			"Fall dur (ms)", "Min |a| in fall (g)", "Peak |a| (g)", "Peak |ω| (°/s)"},
	}
	for _, id := range ids {
		st := byTask[id]
		task, err := synth.TaskByID(id)
		kind := "?"
		if err == nil {
			if task.IsFall() {
				kind = "fall"
			} else {
				kind = "adl"
			}
		}
		fallDur, minAcc, cadence := "-", "-", "-"
		if len(st.fallDurMS) > 0 {
			fallDur = fmt.Sprintf("%.0f", mean(st.fallDurMS))
			minAcc = fmt.Sprintf("%.2f", mean(st.minFallAcc))
		}
		if len(st.cadence) > 0 {
			cadence = fmt.Sprintf("%.1f", mean(st.cadence))
		}
		tb.AddRow(id, kind, st.trials,
			fmt.Sprintf("%.1f", float64(st.samples)/float64(st.trials)/100),
			cadence, fallDur, minAcc,
			fmt.Sprintf("%.1f", st.peakAcc),
			fmt.Sprintf("%.0f", st.peakGyro))
	}
	tb.Fprint(os.Stdout)

	stats := d.ComputeStats()
	fmt.Printf("\n%d trials, %d subjects, %.1f minutes; fall phase %.0f ms mean, %.0f ms shortest\n",
		stats.Trials, stats.Subjects, float64(stats.Samples)/6000,
		stats.FallDurationMeanMS, stats.FallDurationShortest)
}

func mean(x []float64) float64 {
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}
