// Command fallserve runs the resilient serving runtime's chaos soak:
// N concurrent IMU streams (internal/synth continuous-wear sessions
// with the canonical fall signature spliced in mid-stream)
// multiplexed onto detector cascades while the harness injects
// mid-fall pipeline panics, ingress
// bursts past the ring, 200 ms/sample consumer stalls, delivery
// jitter, and one unrecoverable crash-loop. It prints the per-session
// outcome table and the acceptance verdicts (zero missed deadlines on
// healthy sessions, bit-identical post-restore decision streams, no
// goroutine leaks, bounded heap growth).
//
//	fallserve -sessions 16 -samples 600 -panics 2 -check
//
// With -check the process exits non-zero if any acceptance criterion
// fails, which is how scripts/verify.sh gates CI on it.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/cascade"
	"repro/internal/model"
	"repro/internal/serve"
	"repro/internal/tensor"
)

// newPipeline builds one session's cascade at the requested compiled
// width. serve.Pipeline is width-agnostic, so sessions of different
// precisions can share one runtime.
func newPipeline[S tensor.Scalar]() (serve.Pipeline, error) {
	primary, err := model.NewThreshold(model.KindThresholdAcc)
	if err != nil {
		return nil, err
	}
	fallback, err := model.NewThreshold(model.KindThresholdAcc)
	if err != nil {
		return nil, err
	}
	return cascade.NewOf[S](primary, fallback, cascade.Config{WindowMS: 400, Overlap: 0.5})
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("fallserve: ")
	sessions := flag.Int("sessions", 16, "concurrent streams")
	samples := flag.Int("samples", 600, "raw samples per stream")
	panics := flag.Int("panics", 2, "sessions given a one-shot mid-fall panic")
	seed := flag.Int64("seed", 42, "random seed for stream phases and jitter")
	check := flag.Bool("check", false, "exit non-zero if any acceptance criterion fails")
	verbose := flag.Bool("v", false, "log restart and shed events")
	precision := flag.String("precision", "f64", "compiled scalar width of the session pipelines (f64 or f32)")
	flag.Parse()

	factory := newPipeline[float64]
	switch *precision {
	case "f64", "float64":
	case "f32", "float32":
		factory = newPipeline[float32]
	default:
		log.Fatalf("unknown -precision %q (want f64 or f32)", *precision)
	}

	cfg := serve.SoakConfig{
		Sessions:    *sessions,
		Samples:     *samples,
		Panics:      *panics,
		Seed:        *seed,
		NewPipeline: factory,
		Background:  serve.SynthBackground(*seed, *samples),
	}
	if *verbose {
		cfg.Log = log.Printf
	}
	rep, err := serve.RunSoak(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep.WriteTable(os.Stdout)
	if *check {
		if errs := rep.Check(); len(errs) > 0 {
			fmt.Fprintf(os.Stderr, "fallserve: %d acceptance criteria failed\n", len(errs))
			os.Exit(1)
		}
	}
}
