// Command fallvet runs the repo's invariant linter (internal/lint)
// over the given package patterns:
//
//	fallvet ./...
//	fallvet -json ./internal/nn ./internal/quant
//	fallvet -baseline fallvet_baseline.json -diff ./...
//	fallvet -baseline fallvet_baseline.json -write ./...
//
// It enforces the contracts the tests can only observe after the fact:
// deterministic packages must not read clocks, draw from the global
// math/rand source, or iterate maps; //fallvet:hotpath functions must
// not contain allocating or boxing constructs, and every function they
// transitively reach must be provably alloc-free (hottrans); Close/
// Sync/Write/Rename errors must be checked; goroutines and channels
// are confined to the sanctioned concurrency packages; snapshot
// writers must cover every struct field not marked //fallvet:derived;
// switches over repo enums must be exhaustive; deterministic packages
// must not compare floats with raw ==/!= or accumulate them under map
// iteration. See DESIGN.md §9 and §13 for the rule catalogue and the
// //fallvet:ignore directive grammar.
//
// -json wraps the diagnostics in a versioned report envelope
// (lint.SchemaVersion). -baseline names a committed debt ledger:
// -write (re)generates it from the current findings, -diff fails only
// on findings not already in it.
//
// Exit status: 0 clean, 1 diagnostics reported (new ones only under
// -diff), 2 operational error.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit a versioned JSON report instead of plain lines")
	baseline := flag.String("baseline", "", "baseline `file` for -diff and -write")
	diff := flag.Bool("diff", false, "fail only on findings not in the -baseline file")
	write := flag.Bool("write", false, "write the current findings to the -baseline file and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fallvet [-json] [-baseline file [-diff|-write]] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if (*diff || *write) && *baseline == "" {
		fatal(fmt.Errorf("-diff and -write need -baseline <file>"))
	}
	if *diff && *write {
		fatal(fmt.Errorf("-diff and -write are mutually exclusive"))
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	diags, npkgs, err := lint.LintPatterns(cwd, patterns, lint.DefaultConfig())
	if err != nil {
		fatal(err)
	}

	// Relativize paths for display, for stable -json output in CI logs,
	// and so baselines written on one checkout match diffs run on
	// another; keep the absolute path if it escapes the working tree.
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].File); err == nil &&
			!filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
			diags[i].File = filepath.ToSlash(rel)
		}
	}

	if *write {
		data, err := lint.NewBaseline(diags).Encode()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*baseline, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("fallvet %s: wrote %s (%d findings)\n", lint.Stamp(), *baseline, len(diags))
		return
	}

	stale := 0
	if *diff {
		base, err := lint.LoadBaseline(*baseline)
		if err != nil {
			fatal(err)
		}
		var staleEntries []lint.BaselineEntry
		diags, staleEntries = base.Diff(diags)
		stale = len(staleEntries)
	}

	if *jsonOut {
		data, err := lint.NewReport(diags, npkgs).Encode()
		if err != nil {
			fatal(err)
		}
		if _, err := os.Stdout.Write(data); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) == 0 {
			fmt.Printf("fallvet %s: %d packages, 0 diagnostics\n", lint.Stamp(), npkgs)
		}
	}
	if stale > 0 {
		fmt.Fprintf(os.Stderr, "fallvet: %d baseline entries no longer fire; refresh with -baseline %s -write\n",
			stale, *baseline)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func hasDotDotPrefix(rel string) bool {
	return rel == ".." || len(rel) > 2 && rel[:3] == ".."+string(filepath.Separator)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fallvet:", err)
	os.Exit(2)
}
