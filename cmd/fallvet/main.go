// Command fallvet runs the repo's invariant linter (internal/lint)
// over the given package patterns:
//
//	fallvet ./...
//	fallvet -json ./internal/nn ./internal/quant
//
// It enforces the contracts the tests can only observe after the fact:
// deterministic packages must not read clocks, draw from the global
// math/rand source, or iterate maps; //fallvet:hotpath functions must
// not contain allocating or boxing constructs; Close/Sync/Write/Rename
// errors must be checked; goroutines and channels are confined to the
// sanctioned concurrency packages (internal/par, internal/serve,
// internal/guard). See DESIGN.md §9 for the rule catalogue and the
// //fallvet:ignore directive grammar.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fallvet [-json] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	diags, npkgs, err := lint.LintPatterns(cwd, patterns, lint.DefaultConfig())
	if err != nil {
		fatal(err)
	}

	// Relativize paths for display (and for stable -json output in CI
	// logs); keep the absolute path if it escapes the working tree.
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].File); err == nil &&
			!filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
			diags[i].File = rel
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
		if len(diags) == 0 {
			fmt.Printf("fallvet %s: %d packages, 0 diagnostics\n", lint.Stamp(), npkgs)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

func hasDotDotPrefix(rel string) bool {
	return rel == ".." || len(rel) > 2 && rel[:3] == ".."+string(filepath.Separator)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fallvet:", err)
	os.Exit(2)
}
