// Session: continuous-wear simulation. Trains the CNN, then "wears"
// it for simulated sessions and reports the deployment numbers the
// per-trial tables cannot show: false activations per hour of wear
// and the airbag lead-time distribution, under different firing
// policies (debounce / refractory).
//
//	go run ./examples/session
package main

import (
	"fmt"
	"log"

	"repro/falldet"
)

func main() {
	log.SetFlags(0)

	data, err := falldet.Synthesize(falldet.SynthConfig{
		WorksiteSubjects: 6,
		KFallSubjects:    4,
		Seed:             21,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := falldet.Config{
		WindowMS:    400,
		Overlap:     0.75, // dense stride: re-evaluate every 100 ms
		Epochs:      25,
		Patience:    8,
		MaxTrainNeg: 3000,
		Seed:        21,
	}
	fmt.Println("training the CNN...")
	det, err := falldet.Train(data, falldet.KindCNN, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A worker's (compressed) shift: falls occur at 20/hour so a short
	// simulation still contains several.
	session, err := falldet.GenerateSession(500, falldet.SessionConfig{
		Minutes:  8,
		FallRate: 20,
	}, 21)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsession: %.2f h of continuous wear, %d episodes, %d falls\n",
		session.DurationHours(), len(session.Events), len(session.Falls()))

	for _, debounce := range []int{1, 2} {
		out, err := det.EvaluateSession(session, falldet.AirbagConfig{Debounce: debounce})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nfiring policy: debounce=%d\n", debounce)
		fmt.Printf("  falls detected   %d/%d (%d with ≥150 ms inflation lead)\n",
			out.Detected, out.Falls, out.InTime)
		fmt.Printf("  mean lead time   %.0f ms\n", out.MeanLeadMS())
		fmt.Printf("  false alarms     %d (%.1f per hour)\n",
			out.FalseAlarms, out.FalseAlarmsPerHour)
	}
	fmt.Println("\nraising debounce suppresses one-off spurious windows at the cost of")
	fmt.Println("one extra stride (100 ms here) of detection latency per fall.")
}
