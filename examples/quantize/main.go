// Quantize: §III-D / §IV-C in miniature — train the CNN, convert it
// to int8 with post-training quantization, compare float and integer
// predictions, and size the result against the STM32F722's budget.
//
//	go run ./examples/quantize
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"repro/falldet"
	"repro/internal/edge"
)

func main() {
	log.SetFlags(0)

	data, err := falldet.Synthesize(falldet.SynthConfig{
		WorksiteSubjects: 5,
		KFallSubjects:    5,
		Seed:             11,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := falldet.Config{
		WindowMS:    400,
		Overlap:     0.5,
		Epochs:      20,
		Patience:    8,
		MaxTrainNeg: 3000,
		Seed:        11,
	}
	fmt.Println("training the CNN...")
	trained, err := falldet.Train(data, falldet.KindCNN, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Round-trip the deployable artefact through disk: Save writes a
	// verified image (magic, version, kind, shape, SHA-256 digest) and
	// LoadSaved reconstructs the detector — model family, window and
	// threshold included — from the bytes alone.
	path := filepath.Join(os.TempDir(), "falldet-cnn.model")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := trained.Save(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	f, err = os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	det, err := falldet.LoadSaved(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	os.Remove(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model round-tripped through %s (verified artifact, kind %v)\n", path, det.Kind())

	segs, err := falldet.ExtractSegments(data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := det.Quantize(falldet.CalibrationWindows(segs, 200, 11), edge.STM32F722())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ndeployment on %s:\n", dep.Target.Name)
	fmt.Printf("  model size     %.2f KiB  (paper: 67.03 KiB, budget 256 KiB)\n", dep.FlashKiB)
	fmt.Printf("  activation RAM %.2f KiB  (paper: 16.87 KiB, budget 256 KiB)\n", dep.RAMKiB)
	fmt.Printf("  inference      %v        (paper: ≈4 ms)\n", dep.InferenceTime)
	fmt.Printf("  sensor fusion  %v        (paper: ≈3 ms)\n", dep.FusionTime)
	fmt.Printf("  fits flash=%v ram=%v\n", dep.FitsFlash, dep.FitsRAM)

	// Float vs int8 behaviour.
	agree, n := 0, 0
	maxGap := 0.0
	for i := range segs {
		pf := det.Score(segs[i].X)
		pq := dep.Q.Predict(segs[i].X)
		if (pf >= 0.5) == (pq >= 0.5) {
			agree++
		}
		if g := math.Abs(pf - pq); g > maxGap {
			maxGap = g
		}
		n++
	}
	fmt.Printf("\nfloat vs int8 over %d segments: %.2f%% threshold agreement, max |Δp| = %.3f\n",
		n, 100*float64(agree)/float64(n), maxGap)
	fmt.Println("(the paper reports unchanged performance after quantization)")

	fmt.Println("\nquantized op pipeline:")
	for _, name := range dep.Q.OpNames() {
		fmt.Printf("  %s\n", name)
	}
}
