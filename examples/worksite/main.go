// Worksite: the construction-site scenario that motivates the
// self-collected dataset — falls from height (ladders, scaffolds) and
// the dynamic activities that make them hard to tell apart from
// jumps. Reproduces a slice of Table IV restricted to the
// worksite-specific tasks.
//
//	go run ./examples/worksite
package main

import (
	"fmt"
	"log"

	"repro/falldet"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	// Worksite-heavy task mix: ladder climbing and falls from height
	// (37–42), obstacle jump (44), plus everyday locomotion for
	// negatives.
	data, err := falldet.Synthesize(falldet.SynthConfig{
		WorksiteSubjects: 10,
		Tasks:            []int{1, 4, 6, 8, 12, 35, 39, 40, 41, 42, 43, 44},
		Seed:             3,
	})
	if err != nil {
		log.Fatal(err)
	}

	cfg := falldet.Config{
		WindowMS:    400,
		Overlap:     0.5,
		Epochs:      25,
		Patience:    8,
		MaxTrainNeg: 3000,
		Folds:       3,
		ValSubjects: 1,
		Seed:        3,
	}
	fmt.Println("cross-validating the CNN on the worksite task mix...")
	res, err := falldet.CrossValidate(data, falldet.KindCNN, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("segment level: %v\n\n", &res.Pooled)

	st := falldet.EventAnalysis(res, 0.5)
	fmt.Println("fall tasks (falls from height are the paper's hardest — long,")
	fmt.Println("clean free fall with little rotation, easily confused with a jump):")
	for _, s := range st.FallTasks {
		task, _ := synth.TaskByID(s.Task)
		fmt.Printf("  task %2d %-55s %5.1f%% missed\n", s.Task, task.Name, s.MissPct)
	}
	fmt.Println("\nADL tasks (the obstacle jump is the paper's worst false-positive source):")
	for _, s := range st.ADLTasks {
		task, _ := synth.TaskByID(s.Task)
		fmt.Printf("  task %2d %-55s %5.1f%% false alarms\n", s.Task, task.Name, s.MissPct)
	}
}
