// Cascade: what the supervised detector cascade buys when a sensor
// dies outright. Streams one hard trip-fall trial twice — through the
// plain hardened pipeline and through the three-tier cascade — while
// the gyroscope dies half a second before the fall begins. The plain
// pipeline does the safe thing and fails closed: the gyro group trips
// Faulted, evaluation stops, the fall is missed. The cascade demotes
// to its accelerometer-only tier and still fires before the 150 ms
// airbag deadline.
//
// The tiers are wired with the fast threshold classifiers so the demo
// runs in milliseconds; in deployment the same roles are filled by the
// trained three-branch CNN and its accel-branch-only sibling
// (falldet.TrainCascade), which is where the tier names come from.
//
//	go run ./examples/cascade
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/cascade"
	"repro/internal/dataset"
	"repro/internal/edge"
	"repro/internal/imu"
	"repro/internal/model"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	// One synthetic trip fall (Table II task 30): walking, a trip, a
	// falling phase, impact.
	rng := rand.New(rand.NewSource(3))
	subj := synth.NewSubject(1, rng)
	task, err := synth.TaskByID(30)
	if err != nil {
		log.Fatal(err)
	}
	trial := synth.GenerateTrial(subj, task, 0, 6, rng)

	// The gyroscope dies (permanent NaN output) half a second before
	// the fall starts, so every window that could catch the fall has a
	// dead rotation channel.
	gyroDeath := trial.FallOnset - 50
	fmt.Printf("trial: %d samples, fall onset %d, impact %d (airbag needs %d ms)\n",
		len(trial.Samples), trial.FallOnset, trial.Impact, dataset.AirbagInflationMS)
	fmt.Printf("gyroscope dies at sample %d and never comes back\n\n", gyroDeath)

	plain(&trial, gyroDeath)
	cascaded(&trial, gyroDeath)

	fmt.Println("the plain pipeline fails closed — correct for a model that needs the gyro,")
	fmt.Println("fatal for the wearer. The cascade's supervisor sees exactly which channel")
	fmt.Println("group died, demotes one tier, and keeps deciding on the channels it can")
	fmt.Println("still trust. Deployment pairing: falldet.TrainCascade + fallbench -exp cascade.")
}

// deadGyro returns the trial's sample i with the gyro replaced by NaN
// from the death sample onward.
func deadGyro(t *dataset.Trial, i, death int) (imu.Vec3, imu.Vec3) {
	s := t.Samples[i]
	if i >= death {
		nan := math.NaN()
		return s.Acc, imu.Vec3{X: nan, Y: nan, Z: nan}
	}
	return s.Acc, s.Gyro
}

// plain replays the trial through the base hardened pipeline with a
// classifier that needs the rotation channels.
func plain(trial *dataset.Trial, death int) {
	clf, err := model.NewThreshold(model.KindThresholdGyro)
	if err != nil {
		log.Fatal(err)
	}
	det, err := edge.NewDetector(clf, edge.DetectorConfig{WindowMS: 200, Overlap: 0.75})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== plain pipeline (needs the gyro) ==")
	last := edge.HealthHealthy
	trigger := -1
	for i := range trial.Samples {
		acc, gyro := deadGyro(trial, i, death)
		r := det.Push(acc, gyro)
		if r.Health != last {
			fmt.Printf("  sample %3d: health %s → %s\n", i, last, r.Health)
			last = r.Health
		}
		if r.Triggered && trigger < 0 {
			trigger = i
		}
	}
	st := det.Stats()
	fmt.Printf("  gyro samples held: %d; windows evaluated after the death: 0 — the\n", st.GyroHeld)
	fmt.Println("  pipeline is Faulted and refuses to score a window it cannot trust")
	report(trial, trigger, "")
}

// cascaded replays the same stream through the three-tier cascade.
func cascaded(trial *dataset.Trial, death int) {
	primary, err := model.NewThreshold(model.KindThresholdGyro)
	if err != nil {
		log.Fatal(err)
	}
	fallback, err := model.NewThreshold(model.KindThresholdAcc)
	if err != nil {
		log.Fatal(err)
	}
	c, err := cascade.New(primary, fallback, cascade.Config{WindowMS: 200, Overlap: 0.75})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== cascade (supervisor + accelerometer-only fallback tier) ==")
	lastTier := c.SupervisorTier()
	trigger := -1
	var tier cascade.Tier
	for i := range trial.Samples {
		acc, gyro := deadGyro(trial, i, death)
		d := c.Push(acc, gyro)
		if d.SupervisorTier != lastTier {
			fmt.Printf("  sample %3d: supervisor %s → %s (gyro group %s)\n",
				i, lastTier, d.SupervisorTier, d.Groups.Gyro)
			lastTier = d.SupervisorTier
		}
		if d.Triggered && trigger < 0 {
			trigger = i
			tier = d.Tier
		}
	}
	ev := c.TierEvals()
	fmt.Printf("  decisions per tier: %d %s, %d %s, %d %s\n",
		ev[cascade.TierPrimary], cascade.TierPrimary,
		ev[cascade.TierFallback], cascade.TierFallback,
		ev[cascade.TierThreshold], cascade.TierThreshold)
	report(trial, trigger, fmt.Sprintf(" by the %s tier", tier))
}

// report prints the outcome line shared by both replays.
func report(trial *dataset.Trial, trigger int, by string) {
	switch {
	case trigger < 0:
		fmt.Println("  outcome: no trigger — the fall is MISSED")
	default:
		lead := float64(trial.Impact-trigger) * 1000 / dataset.SampleRate
		verdict := "too late"
		if lead >= dataset.AirbagInflationMS {
			verdict = "in time"
		}
		fmt.Printf("  outcome: triggered at sample %d%s, %.0f ms before impact (%s)\n",
			trigger, by, lead, verdict)
	}
	fmt.Println()
}
