// Faults: what the streaming pipeline does when the sensor misbehaves.
// Streams one hard trip-fall trial through the hardened detector four
// times — clean, with NaN bursts, with burst dropout and with a
// mid-fall long gap — and prints the health transitions, the fault
// counters and whether the airbag still fires in time. Uses the
// threshold classifier so the demo runs in milliseconds; the same
// pipeline wraps the trained CNN in deployment.
//
//	go run ./examples/faults
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/edge"
	"repro/internal/fault"
	"repro/internal/imu"
	"repro/internal/model"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	// One synthetic trip fall (Table II task 30): walking, a trip, a
	// 500 ms falling phase, impact.
	rng := rand.New(rand.NewSource(3))
	subj := synth.NewSubject(1, rng)
	task, err := synth.TaskByID(30)
	if err != nil {
		log.Fatal(err)
	}
	trial := synth.GenerateTrial(subj, task, 0, 6, rng)

	clf, err := model.NewThreshold(model.KindThresholdAcc)
	if err != nil {
		log.Fatal(err)
	}
	det, err := edge.NewDetector(clf, edge.DetectorConfig{WindowMS: 200, Overlap: 0.75})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("trial: %d samples, fall onset %d, impact %d (airbag needs %d ms)\n\n",
		len(trial.Samples), trial.FallOnset, trial.Impact, dataset.AirbagInflationMS)

	scenarios := []struct {
		name string
		inj  fault.Injector
	}{
		{"clean sensor", nil},
		{"NaN/Inf bursts (bus glitches)", fault.NewNaNBurst(0.02, 3, 11)},
		{"5% burst dropout", fault.NewDropout(0.05, 3, 21)},
		{"long gap mid-stream", &gapAt{start: 150, length: 30}},
	}
	for _, sc := range scenarios {
		replay(det, &trial, sc.name, sc.inj)
	}

	fmt.Println("degradation policy: short gaps are bridged by sample-and-hold and the")
	fmt.Println("pipeline keeps classifying (Degraded); non-finite samples are quarantined;")
	fmt.Println("a long gap re-primes the filters and holds classification off until a full")
	fmt.Println("fresh window accumulates, so the model never scores stale ring contents.")
}

// replay streams the trial through the detector under one fault
// condition, logging health transitions as they happen.
func replay(det *edge.Detector, trial *dataset.Trial, name string, inj fault.Injector) {
	fmt.Printf("== %s ==\n", name)
	det.Reset()
	if inj != nil {
		inj.Reset()
	}
	last := edge.HealthHealthy
	trigger := -1
	for i, s := range trial.Samples {
		var r edge.Result
		switch {
		case inj == nil:
			r = det.Push(s.Acc, s.Gyro)
		default:
			cs, eff := inj.Apply(s)
			switch eff {
			case fault.Drop:
				r = det.PushMissing(1)
			case fault.Repeat:
				det.Push(cs.Acc, cs.Gyro)
				r = det.Push(cs.Acc, cs.Gyro)
			case fault.Pass:
				r = det.Push(cs.Acc, cs.Gyro)
			}
		}
		if r.Health != last {
			fmt.Printf("  sample %3d: health %s → %s\n", i, last, r.Health)
			last = r.Health
		}
		if r.Triggered && trigger < 0 {
			trigger = i
		}
	}
	st := det.Stats()
	fmt.Printf("  faults absorbed: %d quarantined, %d missing (%d bridged, %d holdoffs), %d NaN scores\n",
		st.Quarantined, st.Missing, st.Bridged, st.Holdoffs, st.BadScores)
	switch {
	case trigger < 0:
		fmt.Println("  outcome: no trigger")
	default:
		lead := float64(trial.Impact-trigger) * 1000 / dataset.SampleRate
		verdict := "too late"
		if lead >= dataset.AirbagInflationMS {
			verdict = "in time"
		}
		fmt.Printf("  outcome: triggered at sample %d, %.0f ms before impact (%s)\n",
			trigger, lead, verdict)
	}
	fmt.Println()
}

// gapAt is a deterministic scripted injector: one contiguous gap of
// the given length, for demonstrating the holdoff path.
type gapAt struct {
	start, length int
	step          int
}

func (g *gapAt) Name() string { return fmt.Sprintf("gap(%d@%d)", g.length, g.start) }
func (g *gapAt) Reset()       { g.step = 0 }
func (g *gapAt) Apply(s imu.Sample) (imu.Sample, fault.Effect) {
	i := g.step
	g.step++
	if i >= g.start && i < g.start+g.length {
		return s, fault.Drop
	}
	return s, fault.Pass
}
