// Quickstart: synthesise a small fall dataset, cross-validate the
// paper's lightweight CNN, and print segment- and event-level metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/falldet"
)

func main() {
	log.SetFlags(0)

	// 1. Data: two sources (worksite flavour in g, KFall flavour in
	//    m/s² with a rotated sensor frame), aligned and low-pass
	//    filtered by Synthesize.
	data, err := falldet.Synthesize(falldet.SynthConfig{
		WorksiteSubjects: 5,
		KFallSubjects:    5,
		Seed:             42,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := data.ComputeStats()
	fmt.Printf("dataset: %d trials, %d falls, %d subjects\n", st.Trials, st.Falls, st.Subjects)

	// 2. Subject-independent cross-validation of the proposed CNN at
	//    the paper's best configuration (400 ms windows, 50 % overlap).
	cfg := falldet.Config{
		WindowMS:    400,
		Overlap:     0.5,
		Epochs:      25, // paper: 200; reduced for a quick demo
		Patience:    8,
		MaxTrainNeg: 3000,
		Folds:       3,
		ValSubjects: 1,
		Seed:        42,
	}
	res, err := falldet.CrossValidate(data, falldet.KindCNN, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsegment level (pooled over folds): %v\n", &res.Pooled)

	// 3. Event level: what actually matters for an airbag — how many
	//    fall events would trigger it in time, and how many daily
	//    activities would set it off spuriously.
	events := falldet.EventAnalysis(res, 0.5)
	fmt.Printf("event level: %.2f%% of falls missed, %.2f%% of ADLs false-triggered\n",
		events.AllFallMissPct, events.AllADLFPPct)
	fmt.Printf("hardest fall tasks:\n")
	for i, s := range events.FallTasks {
		if i == 3 {
			break
		}
		fmt.Printf("  task %2d: %.1f%% missed (%d events)\n", s.Task, s.MissPct, s.Events)
	}
}
