// Airbag: the paper's motivating application. Trains the CNN, wraps
// it in the real-time streaming pipeline (causal filtering + sensor
// fusion + ring buffer) and replays fall trials sample by sample,
// printing when the airbag fires and how much inflation lead time it
// gets before the body hits the ground.
//
//	go run ./examples/airbag
package main

import (
	"fmt"
	"log"

	"repro/falldet"
	"repro/internal/dataset"
)

func main() {
	log.SetFlags(0)

	data, err := falldet.Synthesize(falldet.SynthConfig{
		WorksiteSubjects: 6,
		KFallSubjects:    4,
		Seed:             7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Denser 75 % overlap for streaming: the airbag controller
	// re-evaluates every 100 ms instead of every 200 ms, halving the
	// worst-case detection latency.
	cfg := falldet.Config{
		WindowMS:    400,
		Overlap:     0.75,
		Epochs:      25,
		Patience:    8,
		MaxTrainNeg: 3000,
		Seed:        7,
	}
	fmt.Println("training the pre-impact CNN...")
	det, err := falldet.Train(data, falldet.KindCNN, cfg)
	if err != nil {
		log.Fatal(err)
	}
	stream, err := det.Stream()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nreplaying trials (airbag needs %d ms to inflate):\n\n", dataset.AirbagInflationMS)
	var falls, fired, inTime, adls, spurious int
	for i := range data.Trials {
		tr := &data.Trials[i]
		sim := stream.Simulate(tr)
		switch {
		case tr.IsFall():
			falls++
			if sim.Triggered {
				fired++
			}
			if sim.InTime {
				inTime++
			}
			if falls <= 8 {
				status := "MISSED"
				if sim.InTime {
					status = fmt.Sprintf("protected (%.0f ms lead)", sim.LeadTimeMS)
				} else if sim.Triggered {
					status = fmt.Sprintf("too late (%.0f ms lead)", sim.LeadTimeMS)
				}
				fmt.Printf("  fall  task %2d subj %3d: %s\n", tr.Task, tr.Subject, status)
			}
		default:
			adls++
			if sim.FalseAlarm {
				spurious++
			}
		}
	}
	fmt.Printf("\nfalls:  %d total, %d triggered, %d protected in time (%.1f%%)\n",
		falls, fired, inTime, 100*float64(inTime)/float64(falls))
	fmt.Printf("ADLs:   %d total, %d spurious activations (%.1f%%)\n",
		adls, spurious, 100*float64(spurious)/float64(adls))
	fmt.Println("\na spurious activation wastes a cartridge and the wearer's trust —")
	fmt.Println("the paper tunes for precision first, accepting a few missed falls.")
}
